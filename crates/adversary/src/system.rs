//! The composed closed system under adversary control.

use nonfifo_channel::{
    corrupt_packet, AdversarialChannel, Channel, ChannelIntrospect, FaultObserver,
};
use nonfifo_ioa::{CopyId, Dir, Event, Execution, Header, Message, Packet, SpecViolation};
use nonfifo_ioa::{Counts, SpecMonitor};
use nonfifo_protocols::{BoxedReceiver, BoxedTransmitter, DataLink, GhostInfo};

/// What the adversary does with a freshly sent forward packet during a
/// [`System::step`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disposition {
    /// Leave the copy delayed on the channel.
    Park,
    /// Deliver the copy this step.
    Deliver,
}

/// The closed system of the paper's Figure 1 with both physical channels
/// under adversary control.
///
/// The forward channel is permanently in
/// [`DeliveryMode::Park`](nonfifo_channel::DeliveryMode::Park): every fresh
/// copy is parked, and the per-step policy decides which copies — fresh or
/// stale — are released. Acknowledgements flow immediately (the proofs never
/// need to manipulate the backward channel: in each simulation argument the
/// receiver behaves identically and re-sends its acks fresh).
///
/// Every action is recorded in an [`Execution`] and checked online by a
/// [`SpecMonitor`]; the falsifiers succeed precisely when the monitor flags
/// `rm > sm`.
#[derive(Debug)]
pub struct System {
    /// The transmitting-station automaton.
    pub tx: BoxedTransmitter,
    /// The receiving-station automaton.
    pub rx: BoxedReceiver,
    /// The forward (t→r) channel, parked by default.
    pub fwd: AdversarialChannel,
    /// The backward (r→t) channel, immediate by default.
    pub bwd: AdversarialChannel,
    exec: Execution,
    monitor: SpecMonitor,
    next_msg: u64,
    /// Forward-channel watermark at the most recent `send_msg` — copies
    /// older than this are the stale population.
    round_watermark: CopyId,
    /// How many packets the policy may pump from the transmitter per step.
    pub burst: usize,
    peak_space: usize,
    /// Distinct forward packet values sent so far, kept sorted (a flat vec:
    /// the alphabet is tiny and binary-search insert beats a tree's pointer
    /// chasing and per-node allocations).
    sent_values: Vec<Packet>,
    partitioned: bool,
    /// Whether the protocol consumes [`GhostInfo`]; honest protocols don't,
    /// and [`step`](System::step) skips the ghost sweep entirely for them.
    uses_ghosts: bool,
    /// Reusable ghost summary so the per-step sweep never allocates.
    ghost_scratch: GhostInfo,
}

impl Clone for System {
    fn clone(&self) -> Self {
        System {
            tx: self.tx.clone_box(),
            rx: self.rx.clone_box(),
            fwd: self.fwd.clone(),
            bwd: self.bwd.clone(),
            exec: self.exec.clone(),
            monitor: self.monitor.clone(),
            next_msg: self.next_msg,
            round_watermark: self.round_watermark,
            burst: self.burst,
            peak_space: self.peak_space,
            sent_values: self.sent_values.clone(),
            partitioned: self.partitioned,
            uses_ghosts: self.uses_ghosts,
            ghost_scratch: GhostInfo::default(),
        }
    }

    fn clone_from(&mut self, source: &Self) {
        self.assign_from(source);
    }
}

impl System {
    /// Builds the closed system for a fresh instance of `proto`.
    pub fn new(proto: &dyn DataLink) -> Self {
        let (tx, rx) = proto.make();
        System {
            tx,
            rx,
            fwd: AdversarialChannel::parked(Dir::Forward),
            bwd: AdversarialChannel::immediate(Dir::Backward),
            exec: Execution::new(),
            monitor: SpecMonitor::new(),
            next_msg: 0,
            round_watermark: CopyId::from_raw(0),
            burst: 64,
            peak_space: 0,
            sent_values: Vec::new(),
            partitioned: false,
            uses_ghosts: proto.uses_ghosts(),
            ghost_scratch: GhostInfo::default(),
        }
    }

    /// Copies `source`'s state into `self`, reusing every buffer this
    /// system already owns: the automata are refilled in place via
    /// [`Transmitter::assign_from`](nonfifo_protocols::Transmitter::assign_from)
    /// (falling back to `clone_box` on a concrete-type mismatch), and the
    /// channels, monitor, and execution reuse their allocations through
    /// `clone_from`. The state-space explorer recycles frontier systems
    /// through a pool with this, which is what keeps its steady-state
    /// expansion loop off the allocator.
    pub fn assign_from(&mut self, source: &System) {
        if !self.tx.assign_from(source.tx.as_ref()) {
            self.tx = source.tx.clone_box();
        }
        if !self.rx.assign_from(source.rx.as_ref()) {
            self.rx = source.rx.clone_box();
        }
        self.fwd.clone_from(&source.fwd);
        self.bwd.clone_from(&source.bwd);
        self.exec.clone_from(&source.exec);
        self.monitor.clone_from(&source.monitor);
        self.next_msg = source.next_msg;
        self.round_watermark = source.round_watermark;
        self.burst = source.burst;
        self.peak_space = source.peak_space;
        self.sent_values.clone_from(&source.sent_values);
        self.partitioned = source.partitioned;
        self.uses_ghosts = source.uses_ghosts;
        // ghost_scratch is per-step scratch, not logical state: keep ours.
    }

    /// The recorded execution so far.
    pub fn execution(&self) -> &Execution {
        &self.exec
    }

    /// Replaces the event log with a counters-only recorder
    /// ([`Execution::counts_only`]): the online monitor still observes every
    /// event and [`counts`](System::counts) stays exact, but
    /// [`execution`](System::execution) no longer accumulates history, so
    /// cloning the system is O(state) instead of O(history). The parallel
    /// explorer clones one system per expanded edge and re-materialises the
    /// winning execution by replaying its schedule.
    ///
    /// # Panics
    ///
    /// Panics if any event has already been recorded — switching modes
    /// mid-run would silently truncate the log.
    pub fn disable_event_log(&mut self) {
        assert!(
            self.exec.is_empty() && self.exec.counts() == Counts::default(),
            "disable_event_log after events were recorded"
        );
        self.exec = Execution::counts_only();
    }

    /// The Definition 2 counters of the recorded execution.
    pub fn counts(&self) -> Counts {
        self.exec.counts()
    }

    /// The first specification violation observed, if any.
    pub fn violation(&self) -> Option<SpecViolation> {
        self.monitor.first_violation()
    }

    /// Messages handed to the transmitter so far.
    pub fn messages_sent(&self) -> u64 {
        self.next_msg
    }

    /// Peak `space_bytes` observed across both automata.
    pub fn peak_space_bytes(&self) -> usize {
        self.peak_space
    }

    /// Number of distinct forward packet values sent so far — the paper's
    /// header count `|P|` for this execution.
    pub fn distinct_forward_packets(&self) -> u64 {
        self.sent_values.len() as u64
    }

    /// The watermark separating stale from current-round forward copies.
    pub fn round_watermark(&self) -> CopyId {
        self.round_watermark
    }

    /// Whether the protocol driving this system consumes [`GhostInfo`].
    /// Ghost-reading protocols observe the in-transit pool through the
    /// per-step summary, so channel-only edits are *not* invisible to them —
    /// the explorer's partial-order reduction disables itself here.
    pub fn uses_ghosts(&self) -> bool {
        self.uses_ghosts
    }

    /// True when the delayed forward copy `p` is *retired garbage*: the
    /// receiver has retired its header (it can never be delivered again)
    /// and the transmitter has retired it too (the acknowledgement the
    /// receiver would echo for it is ignored for the rest of time). Retired
    /// copies are interchangeable — only how many of them occupy pool slots
    /// matters — which is what the explorer's partial-order reduction
    /// exploits (see [`por`](crate::por)). Both claims come from the
    /// protocol ([`Transmitter::header_retired`] /
    /// [`Receiver::header_retired`]) and are conservative-by-default.
    ///
    /// [`Transmitter::header_retired`]: nonfifo_protocols::Transmitter::header_retired
    /// [`Receiver::header_retired`]: nonfifo_protocols::Receiver::header_retired
    pub fn packet_retired(&self, p: Packet) -> bool {
        self.rx.header_retired(p.header()) && self.tx.header_retired(p.header())
    }

    /// Approximate resident bytes of this system: the struct itself plus
    /// the automata's live state and the channels' reserved buffers. Feeds
    /// the explorer's `explore.peak_frontier_bytes` gauge; an estimate, not
    /// an accounting guarantee.
    pub fn heap_bytes_estimate(&self) -> usize {
        std::mem::size_of::<System>()
            + self.tx.space_bytes()
            + self.rx.space_bytes()
            + self.fwd.heap_bytes()
            + self.bwd.heap_bytes()
            + self.sent_values.capacity() * std::mem::size_of::<Packet>()
    }

    /// True when the transmitter can accept the next message.
    pub fn ready(&self) -> bool {
        self.tx.ready()
    }

    /// Hands the next (identical) message to the transmitter and marks the
    /// round boundary for staleness accounting.
    ///
    /// # Panics
    ///
    /// Panics if the transmitter is not [`ready`](System::ready).
    pub fn send_msg(&mut self) {
        assert!(self.tx.ready(), "send_msg while transmitter busy");
        self.round_watermark = self.fwd.watermark();
        let m = Message::identical(self.next_msg);
        self.next_msg += 1;
        self.record(Event::SendMsg(m));
        self.tx.on_send_msg(m);
    }

    fn record(&mut self, event: Event) {
        let _ = self.monitor.observe(&event);
        self.exec.push(event);
    }

    /// Current ghost summary (pushed to the automata at each step).
    pub fn ghost(&self) -> GhostInfo {
        let mut ghost = GhostInfo::default();
        self.fill_ghost(&mut ghost);
        ghost
    }

    /// Refills `ghost` in place (clearing it first); the hot path in
    /// [`step`](System::step) runs this over a scratch summary so the
    /// per-step sweep touches no heap once the scratch has warmed up.
    fn fill_ghost(&self, ghost: &mut GhostInfo) {
        ghost.reset();
        ghost.fwd_in_transit = self.fwd.in_transit_len() as u64;
        ghost.bwd_in_transit = self.bwd.in_transit_len() as u64;
        for (packet, _copy) in self.fwd.parked_multiset().iter() {
            let h = packet.header();
            if ghost.stale_fwd_by_header.iter().any(|&(g, _)| g == h) {
                continue;
            }
            let n = self.fwd.header_copies_older_than(h, self.round_watermark) as u64;
            ghost.push_stale(h, n);
        }
    }

    fn note_sent_value(&mut self, pkt: Packet) {
        if let Err(i) = self.sent_values.binary_search(&pkt) {
            self.sent_values.insert(i, pkt);
        }
    }

    /// Runs one scheduler step:
    ///
    /// 1. push ghost summaries and tick both automata;
    /// 2. pump up to [`burst`](System::burst) transmitter sends onto the
    ///    forward channel (parked), consulting `dispose` for each;
    /// 3. deliver everything released on the forward channel to the
    ///    receiver;
    /// 4. drain receiver deliveries and acknowledgements; acks flow to the
    ///    transmitter immediately.
    ///
    /// Returns the number of `receive_msg` actions that occurred.
    pub fn step<F>(&mut self, mut dispose: F) -> u64
    where
        F: FnMut(Packet, CopyId, &mut AdversarialChannel) -> Disposition,
    {
        if self.uses_ghosts {
            // Take the scratch out so the automata can borrow it while we
            // stay mutably borrowed; its buffer survives round trips.
            let mut ghost = std::mem::take(&mut self.ghost_scratch);
            self.fill_ghost(&mut ghost);
            self.tx.on_ghost(&ghost);
            self.rx.on_ghost(&ghost);
            self.ghost_scratch = ghost;
        }
        self.tx.on_tick();
        self.rx.on_tick();

        // Transmitter output.
        for _ in 0..self.burst {
            let Some(pkt) = self.tx.poll_send() else {
                break;
            };
            self.note_sent_value(pkt);
            let copy = self.fwd.send(pkt);
            self.record(Event::SendPkt {
                dir: Dir::Forward,
                packet: pkt,
                copy,
            });
            if self.partitioned {
                // A partitioned forward channel loses every fresh copy;
                // the drop is drained (and monitored) in drain_released.
                let _ = self.fwd.drop_copy(copy);
            } else if dispose(pkt, copy, &mut self.fwd) == Disposition::Deliver {
                // Release may be a no-op if the policy already released it.
                let _ = self.fwd.release_copy(copy);
            }
        }

        self.drain_released()
    }

    /// Whether the forward channel is currently partitioned.
    pub fn partitioned(&self) -> bool {
        self.partitioned
    }

    /// Partitions or heals the forward channel. While partitioned, every
    /// fresh forward copy is dropped at the moment it is sent (each drop is
    /// a monitored `DropPkt`, so the accounting stays PL1-sound). Copies
    /// already parked are unaffected — a partition severs the link, it does
    /// not flush the buffer.
    pub fn set_partitioned(&mut self, on: bool) {
        self.partitioned = on;
    }

    /// The oldest delayed forward copy with header `h`, if any.
    pub fn oldest_forward_of_header(&self, h: Header) -> Option<Packet> {
        self.fwd
            .parked_multiset()
            .iter()
            .filter(|(p, _)| p.header() == h)
            .min_by_key(|&(_, c)| c)
            .map(|(p, _)| p)
    }

    /// Duplicates the oldest delayed forward copy of header `h`: a second
    /// copy of the same packet value is minted onto the channel (parked) as
    /// a monitored `SendPkt`, exactly how the chaos layer declares its
    /// duplicate twins. Returns false (no-op) if no copy of `h` is delayed.
    pub fn duplicate_oldest(&mut self, h: Header) -> bool {
        let Some(pkt) = self.oldest_forward_of_header(h) else {
            return false;
        };
        self.note_sent_value(pkt);
        let copy = self.fwd.send(pkt);
        self.record(Event::SendPkt {
            dir: Dir::Forward,
            packet: pkt,
            copy,
        });
        true
    }

    /// Mints `pkt` onto the forward channel as a parked, monitored
    /// `SendPkt` — the corrupted-start explorer's way of seeding an
    /// arbitrary in-transit multiset before the first adversary action.
    /// Same declaration pattern as [`duplicate_oldest`](System::duplicate_oldest):
    /// the copy is announced to the monitor, so its later delivery or loss
    /// stays PL1-sound.
    pub fn preload_forward(&mut self, pkt: Packet) -> CopyId {
        self.note_sent_value(pkt);
        let copy = self.fwd.send(pkt);
        self.record(Event::SendPkt {
            dir: Dir::Forward,
            packet: pkt,
            copy,
        });
        copy
    }

    /// Replaces the oldest delayed forward copy of header `h` with a
    /// bit-corrupted rewrite: the original copy is dropped (monitored
    /// `DropPkt`) and the corrupted value is minted as a fresh parked copy
    /// (monitored `SendPkt`). Returns false (no-op) if no copy of `h` is
    /// delayed.
    pub fn corrupt_oldest(&mut self, h: Header) -> bool {
        let Some(pkt) = self.oldest_forward_of_header(h) else {
            return false;
        };
        let dropped = self.fwd.drop_oldest_of_packet(pkt).is_some();
        debug_assert!(dropped, "oldest copy just observed must be droppable");
        let twisted = corrupt_packet(pkt);
        self.note_sent_value(twisted);
        let copy = self.fwd.send(twisted);
        self.record(Event::SendPkt {
            dir: Dir::Forward,
            packet: twisted,
            copy,
        });
        self.drain_released();
        true
    }

    /// Crashes the transmitting station with total loss of volatile state
    /// (see [`nonfifo_protocols::Recoverable`]). The channels are
    /// untouched: every in-transit copy survives the crash.
    pub fn crash_tx(&mut self) {
        self.tx.crash_amnesia();
    }

    /// Crashes the receiving station with total loss of volatile state.
    pub fn crash_rx(&mut self) {
        self.rx.crash_amnesia();
    }

    /// Delivers everything currently queued on both channels and drains the
    /// automata outputs; returns the number of `receive_msg` actions.
    pub fn drain_released(&mut self) -> u64 {
        let mut delivered_msgs = 0;
        // Forward deliveries to the receiver.
        while let Some((pkt, copy)) = self.fwd.poll_deliver() {
            self.record(Event::ReceivePkt {
                dir: Dir::Forward,
                packet: pkt,
                copy,
            });
            self.rx.on_receive_pkt(pkt);
            delivered_msgs += self.drain_rx_outputs();
        }
        // A receiver may also have pending outputs without new receipts
        // (e.g. after a tick).
        delivered_msgs += self.drain_rx_outputs();
        for (pkt, copy) in self.fwd.drain_drops() {
            self.record(Event::DropPkt {
                dir: Dir::Forward,
                packet: pkt,
                copy,
            });
        }
        self.note_space();
        delivered_msgs
    }

    fn drain_rx_outputs(&mut self) -> u64 {
        let mut delivered = 0;
        while let Some(m) = self.rx.poll_deliver() {
            self.record(Event::ReceiveMsg(m));
            delivered += 1;
        }
        while let Some(ack) = self.rx.poll_send() {
            let copy = self.bwd.send(ack);
            self.record(Event::SendPkt {
                dir: Dir::Backward,
                packet: ack,
                copy,
            });
        }
        while let Some((ack, copy)) = self.bwd.poll_deliver() {
            self.record(Event::ReceivePkt {
                dir: Dir::Backward,
                packet: ack,
                copy,
            });
            self.tx.on_receive_pkt(ack);
        }
        delivered
    }

    fn note_space(&mut self) {
        let s = self.tx.space_bytes() + self.rx.space_bytes();
        self.peak_space = self.peak_space.max(s);
    }

    /// Convenience: one step delivering every fresh forward copy.
    pub fn step_deliver_all(&mut self) -> u64 {
        self.step(|_, _, _| Disposition::Deliver)
    }

    /// Convenience: one step parking every fresh forward copy.
    pub fn step_park_all(&mut self) -> u64 {
        self.step(|_, _, _| Disposition::Park)
    }

    /// Replays stale copies into the receiver: for each packet value in
    /// `receipts`, releases the oldest delayed copy of that value and
    /// delivers it. The transmitter is not ticked — this realises the
    /// paper's simulated extension `β′`, in which the channel substitutes
    /// delayed copies for the automaton's sends.
    ///
    /// Stops early once the monitor flags a violation (the goal) and
    /// returns how many receipts were replayed.
    ///
    /// # Panics
    ///
    /// Panics if a requested value has no delayed copy — callers must check
    /// coverage first.
    pub fn replay_receipts(&mut self, receipts: &[Packet]) -> usize {
        for (i, &pkt) in receipts.iter().enumerate() {
            let (_, _copy) = self
                .fwd
                .release_oldest_of_packet(pkt)
                .unwrap_or_else(|| panic!("replay of {pkt} without coverage"));
            self.drain_released();
            if self.violation().is_some() {
                return i + 1;
            }
        }
        receipts.len()
    }

    /// Runs `step_deliver_all` until the outstanding message count reaches
    /// zero or `max_steps` elapse; returns true on success.
    pub fn run_to_quiescence(&mut self, max_steps: u64) -> bool {
        for _ in 0..max_steps {
            if self.counts().rm >= self.counts().sm {
                return true;
            }
            self.step_deliver_all();
        }
        self.counts().rm >= self.counts().sm
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nonfifo_protocols::{AlternatingBit, SequenceNumber};

    #[test]
    fn deliver_all_runs_a_message_end_to_end() {
        let mut sys = System::new(&SequenceNumber::new());
        sys.send_msg();
        assert!(sys.run_to_quiescence(32));
        let c = sys.counts();
        assert_eq!((c.sm, c.rm), (1, 1));
        assert_eq!(sys.violation(), None);
    }

    #[test]
    fn park_all_blocks_delivery_and_grows_pool() {
        let mut sys = System::new(&SequenceNumber::new());
        sys.send_msg();
        for _ in 0..10 {
            sys.step_park_all();
        }
        let c = sys.counts();
        assert_eq!(c.rm, 0);
        assert!(c.in_transit(Dir::Forward) >= 10);
        assert_eq!(sys.fwd.in_transit_len() as u64, c.in_transit(Dir::Forward));
    }

    #[test]
    fn ghost_reports_stale_copies() {
        let mut sys = System::new(&AlternatingBit::new());
        sys.send_msg();
        for _ in 0..5 {
            sys.step_park_all();
        }
        // Complete message 0 so we can start round 1.
        assert!(sys.run_to_quiescence(16));
        sys.send_msg();
        let ghost = sys.ghost();
        // The parked copies of bit 0 are stale relative to round 1.
        assert!(ghost.stale_fwd(Header::new(0)) >= 5);
        assert_eq!(ghost.stale_fwd(Header::new(1)), 0);
    }

    #[test]
    fn replay_produces_phantom_delivery_for_alternating_bit() {
        let mut sys = System::new(&AlternatingBit::new());
        // Message 0: park a few copies of bit 0, then deliver.
        sys.send_msg();
        for _ in 0..3 {
            sys.step_park_all();
        }
        assert!(sys.run_to_quiescence(16));
        // Message 1 (bit 1) delivered cleanly.
        sys.send_msg();
        assert!(sys.run_to_quiescence(16));
        // Receiver now expects bit 0 again; replay one stale copy.
        let stale0 = Packet::header_only(Header::new(0));
        assert!(sys.fwd.packet_copies(stale0) >= 3);
        sys.replay_receipts(&[stale0]);
        assert!(matches!(
            sys.violation(),
            Some(SpecViolation::MessageInvented { .. })
        ));
        let c = sys.counts();
        assert_eq!(c.rm, c.sm + 1);
    }

    #[test]
    fn fork_is_independent() {
        let mut sys = System::new(&SequenceNumber::new());
        sys.send_msg();
        let mut fork = sys.clone();
        assert!(fork.run_to_quiescence(32));
        assert_eq!(sys.counts().rm, 0);
        assert_eq!(fork.counts().rm, 1);
    }

    #[test]
    fn space_tracking_moves() {
        let mut sys = System::new(&SequenceNumber::new());
        sys.send_msg();
        sys.run_to_quiescence(32);
        assert!(sys.peak_space_bytes() > 0);
    }
}
