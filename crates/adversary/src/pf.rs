//! The Theorem 4.1 falsifier: with `k < n` headers, delivering a message
//! costs at least `1/k` times the number of packets in transit.
//!
//! The proof's induction parks exactly one copy of a *dominant* packet per
//! message — a packet value the boundness extension sends more often than
//! the pool already holds (one must exist, otherwise the whole extension is
//! replayable and the protocol is already broken). After `l` messages the
//! pool holds `l` copies spread over at most `k` values, and any further
//! extension must out-send some value's pool count, i.e. send more than
//! `⌊l/k⌋` packets.
//!
//! Run against a correct bounded-header protocol this yields the measured
//! cost curve of experiment E4 (per-message sends vs. in-transit count);
//! run against an unsafe protocol the coverage check fires and the
//! invalid execution drops out, exactly as in Theorem 3.1.

use crate::oracle::BoundnessOracle;
use crate::system::{Disposition, System};
use crate::{FalsifyOutcome, SurvivalReport, ViolationReport};
use nonfifo_channel::{Channel, ChannelIntrospect};
use nonfifo_ioa::{Dir, Packet};
use nonfifo_protocols::DataLink;
use std::collections::BTreeMap;

/// Budgets for the Theorem 4.1 falsifier.
#[derive(Debug, Clone, Copy)]
pub struct PfConfig {
    /// Messages to run (the `l` of the theorem).
    pub messages: u64,
    /// Scheduler steps allowed per message.
    pub max_steps_per_message: u64,
    /// Step budget of the boundness oracle.
    pub oracle_steps: u64,
}

impl Default for PfConfig {
    fn default() -> Self {
        PfConfig {
            messages: 128,
            max_steps_per_message: 100_000,
            oracle_steps: 200_000,
        }
    }
}

/// Cost record for one message under the Theorem 4.1 adversary.
#[derive(Debug, Clone, Copy)]
pub struct PfMessageCost {
    /// Message index (0-based).
    pub message: u64,
    /// Packets in transit when the message was handed over (the theorem's
    /// `l` for this step).
    pub in_transit_before: u64,
    /// Forward sends of the boundness extension computed at that point —
    /// the quantity Theorem 4.1 bounds below by `⌊l/k⌋`.
    pub extension_sends: u64,
    /// Forward packets actually sent while delivering the message.
    pub sends_this_message: u64,
}

/// The Theorem 4.1 falsifier / cost prober.
#[derive(Debug, Clone, Copy, Default)]
pub struct PfFalsifier {
    /// Budgets.
    pub config: PfConfig,
}

impl PfFalsifier {
    /// Creates a falsifier with explicit budgets.
    pub fn new(config: PfConfig) -> Self {
        PfFalsifier { config }
    }

    /// Runs the construction, returning the outcome and the per-message
    /// cost curve.
    pub fn run(&self, proto: &dyn DataLink) -> (FalsifyOutcome, Vec<PfMessageCost>) {
        let oracle = BoundnessOracle::new(self.config.oracle_steps);
        let mut sys = System::new(proto);
        let mut costs = Vec::new();

        for message in 0..self.config.messages {
            let Some(ext) = oracle.extension_with_new_message(&sys) else {
                return (
                    FalsifyOutcome::Stuck {
                        delivered: sys.counts().rm,
                    },
                    costs,
                );
            };
            let need = ext.histogram();

            // Coverage: a fully replayable extension is an invalid
            // execution (same punchline as Theorem 3.1).
            if !ext.receipts.is_empty() && self.pool_covers(&sys, &need) {
                if let Some(report) = self.attempt_phantom_replay(&sys, &ext.receipts) {
                    return (FalsifyOutcome::Violation(report), costs);
                }
            }

            // Pick the dominant value: sent in β more often than the pool
            // holds. Prefer the value with the smallest pool so copies
            // spread across values (the pigeonhole the theorem needs).
            let dominant = need
                .iter()
                .filter(|(&p, &n)| n > sys.fwd.packet_copies(p) as u64)
                .min_by_key(|(&p, _)| sys.fwd.packet_copies(p))
                .map(|(&p, _)| p);

            let in_transit_before = sys.counts().in_transit(Dir::Forward);
            let sends_before = sys.fwd.total_sent();
            sys.send_msg();

            let mut parked_one = false;
            let mut steps = 0;
            while sys.counts().rm < sys.counts().sm {
                if steps >= self.config.max_steps_per_message {
                    return (
                        FalsifyOutcome::BudgetExhausted {
                            delivered: sys.counts().rm,
                            forward_packets_sent: sys.fwd.total_sent(),
                        },
                        costs,
                    );
                }
                sys.step(|pkt, _copy, _ch| {
                    if !parked_one && Some(pkt) == dominant {
                        parked_one = true;
                        Disposition::Park
                    } else {
                        Disposition::Deliver
                    }
                });
                if let Some(v) = sys.violation() {
                    let report = ViolationReport {
                        violation: v,
                        execution: sys.execution().clone(),
                        messages_before_violation: sys.counts().sm,
                        forward_packets_sent: sys.fwd.total_sent(),
                    };
                    return (FalsifyOutcome::Violation(report), costs);
                }
                steps += 1;
            }

            costs.push(PfMessageCost {
                message,
                in_transit_before,
                extension_sends: ext.forward_sends(),
                sends_this_message: sys.fwd.total_sent() - sends_before,
            });
        }

        let report = SurvivalReport {
            messages_delivered: sys.counts().rm,
            forward_packets_sent: sys.fwd.total_sent(),
            final_in_transit: sys.counts().in_transit(Dir::Forward),
            peak_space_bytes: sys.peak_space_bytes(),
            distinct_forward_packets: sys.distinct_forward_packets(),
        };
        (FalsifyOutcome::Survived(report), costs)
    }

    fn pool_covers(&self, sys: &System, need: &BTreeMap<Packet, u64>) -> bool {
        need.iter()
            .all(|(&p, &n)| sys.fwd.packet_copies(p) as u64 >= n)
    }

    fn attempt_phantom_replay(&self, sys: &System, receipts: &[Packet]) -> Option<ViolationReport> {
        let mut fork = sys.clone();
        fork.replay_receipts(receipts);
        fork.violation().map(|violation| ViolationReport {
            violation,
            execution: fork.execution().clone(),
            messages_before_violation: fork.counts().sm,
            forward_packets_sent: fork.fwd.total_sent(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nonfifo_protocols::{AfekFlush, NaiveCycle, SequenceNumber};

    fn quick(messages: u64) -> PfFalsifier {
        PfFalsifier::new(PfConfig {
            messages,
            max_steps_per_message: 50_000,
            oracle_steps: 100_000,
        })
    }

    #[test]
    fn afek_cost_is_linear_in_transit() {
        let (outcome, costs) = quick(60).run(&AfekFlush::new());
        assert!(
            matches!(outcome, FalsifyOutcome::Survived(_)),
            "got {outcome:?}"
        );
        assert_eq!(costs.len(), 60);
        // In-transit grows by one per message…
        for w in costs.windows(2) {
            assert_eq!(w[1].in_transit_before, w[0].in_transit_before + 1);
        }
        // …and the extension cost tracks in-transit/k with k = 3: check the
        // last point is at least l/k and at most l + O(1).
        let last = costs.last().unwrap();
        let l = last.in_transit_before;
        assert!(
            last.extension_sends >= l / 3,
            "T4.1 lower bound violated: ext {} < l/k = {}",
            last.extension_sends,
            l / 3
        );
        assert!(
            last.extension_sends <= l + 2,
            "afek should be linear: ext {} for l {}",
            last.extension_sends,
            l
        );
    }

    #[test]
    fn naive_cycle_falls_to_coverage_replay() {
        let (outcome, _) = quick(32).run(&NaiveCycle::new(3));
        assert!(outcome.is_violation(), "got {outcome:?}");
    }

    #[test]
    fn sequence_number_survives_with_constant_cost() {
        let (outcome, costs) = quick(40).run(&SequenceNumber::new());
        assert!(
            matches!(outcome, FalsifyOutcome::Survived(_)),
            "got {outcome:?}"
        );
        // Fresh headers every message: the extension never grows.
        for c in &costs {
            assert!(c.extension_sends <= 2, "{c:?}");
        }
    }

    #[test]
    fn extension_lower_bound_holds_for_every_message() {
        // The theorem: ext_sends ≥ ⌊l/k⌋ for a k-header protocol, here the
        // ghost-protected 3-header reconstruction.
        let (_, costs) = quick(45).run(&AfekFlush::new());
        for c in costs {
            assert!(
                c.extension_sends >= c.in_transit_before / 3,
                "message {}: ext {} < l/k = {}",
                c.message,
                c.extension_sends,
                c.in_transit_before / 3
            );
        }
    }
}
