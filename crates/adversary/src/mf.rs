//! The Theorem 3.1 falsifier: `M_f`-bounded protocols with `< n` headers
//! cannot exist.
//!
//! The proof's induction alternates two moves, both realised here:
//!
//! 1. **Growth** (the claim's inductive step): hand over a real message and
//!    run the system in *lockstep replay* — every fresh forward copy is
//!    parked and, when a genuinely stale copy of the same packet value
//!    exists, that stale copy is delivered in its place. The receiver (and
//!    hence the transmitter, via its acknowledgements) cannot distinguish
//!    this from the optimal-channel extension β, so the run is a legal
//!    execution in which the delayed pool strictly grows. The round ends at
//!    the first packet value with no stale copy — exactly the paper's
//!    `β̂ = prefix of β up to the first receive of p ∉ P_i`; the message is
//!    then completed under optimal behaviour (fresh copies delivered, pool
//!    frozen).
//! 2. **Coverage check** (the theorem's punchline): before each message,
//!    compute the boundness extension β for a hypothetical next message and
//!    ask whether the pool holds enough stale copies of every packet value
//!    in β. If it does, replay β *without any `send_msg`* — the receiver
//!    sees a perfectly ordinary extension and delivers a message that was
//!    never sent: `rm = sm + 1`, the invalid execution of the theorem.
//!
//! The coverage replay runs on a fork first, so a protocol that resists it
//! (e.g. the ghost-protected [`AfekFlush`](nonfifo_protocols::AfekFlush))
//! leaves the live construction unpolluted.

use crate::oracle::BoundnessOracle;
use crate::system::{Disposition, System};
use crate::{FalsifyOutcome, SurvivalReport, ViolationReport};
use nonfifo_channel::{Channel, ChannelIntrospect};
use nonfifo_ioa::{Dir, Packet};
use nonfifo_protocols::DataLink;
use std::collections::BTreeMap;

/// Budgets for the Theorem 3.1 falsifier.
#[derive(Debug, Clone, Copy)]
pub struct MfConfig {
    /// Messages to attempt before declaring survival.
    pub max_messages: u64,
    /// Scheduler steps allowed per growth/completion phase.
    pub max_steps_per_phase: u64,
    /// Step budget of the boundness oracle.
    pub oracle_steps: u64,
}

impl Default for MfConfig {
    fn default() -> Self {
        MfConfig {
            max_messages: 64,
            max_steps_per_phase: 100_000,
            oracle_steps: 200_000,
        }
    }
}

/// Per-message record of the growth of the delayed pool (the paper's
/// `(k−i−1)!·f(k+1)^{k−i}`-scale copies in transition).
#[derive(Debug, Clone)]
pub struct MfGrowthStage {
    /// Message index (0-based).
    pub message: u64,
    /// Forward packets the transmitter sent for this message.
    pub sends_this_message: u64,
    /// Delayed-pool size after the message completed.
    pub pool_size: u64,
    /// Per-packet-value pool histogram after the message.
    pub pool_histogram: BTreeMap<Packet, u64>,
}

/// The Theorem 3.1 falsifier.
#[derive(Debug, Clone, Copy, Default)]
pub struct MfFalsifier {
    /// Budgets.
    pub config: MfConfig,
}

impl MfFalsifier {
    /// Creates a falsifier with explicit budgets.
    pub fn new(config: MfConfig) -> Self {
        MfFalsifier { config }
    }

    /// Runs the construction against `proto`.
    ///
    /// Returns [`FalsifyOutcome::Violation`] with the invalid execution if
    /// the protocol falls, [`FalsifyOutcome::Survived`] with growth
    /// statistics otherwise. The growth trace is available via
    /// [`MfFalsifier::run_with_trace`].
    pub fn run(&self, proto: &dyn DataLink) -> FalsifyOutcome {
        self.run_with_trace(proto).0
    }

    /// Like [`run`](MfFalsifier::run), also returning the per-message
    /// growth stages (experiment E2's table rows).
    pub fn run_with_trace(&self, proto: &dyn DataLink) -> (FalsifyOutcome, Vec<MfGrowthStage>) {
        let oracle = BoundnessOracle::new(self.config.oracle_steps);
        let mut sys = System::new(proto);
        let mut stages = Vec::new();

        for message in 0..self.config.max_messages {
            // Coverage check: can the pool fund a phantom extension?
            match oracle.extension_with_new_message(&sys) {
                None => {
                    return (
                        FalsifyOutcome::Stuck {
                            delivered: sys.counts().rm,
                        },
                        stages,
                    )
                }
                Some(ext) => {
                    if !ext.receipts.is_empty() && self.pool_covers(&sys, &ext.histogram()) {
                        if let Some(report) = self.attempt_phantom_replay(&sys, &ext.receipts) {
                            return (FalsifyOutcome::Violation(report), stages);
                        }
                        // Ghost-protected receiver resisted the replay;
                        // keep growing.
                    }
                }
            }

            // Growth round.
            let sends_before = sys.fwd.total_sent();
            sys.send_msg();
            // Only copies delayed since *before* this message count as
            // replayable — the paper's P_i pool is frozen at the round
            // boundary. Copies parked earlier in the same round are fresh.
            let watermark = sys.round_watermark();
            let mut stalled = false;
            let mut steps = 0;
            while !stalled && sys.counts().rm < sys.counts().sm {
                if steps >= self.config.max_steps_per_phase {
                    return (
                        FalsifyOutcome::BudgetExhausted {
                            delivered: sys.counts().rm,
                            forward_packets_sent: sys.fwd.total_sent(),
                        },
                        stages,
                    );
                }
                sys.step(|pkt, _copy, ch| {
                    if !stalled && ch.release_oldest_of_packet_before(pkt, watermark).is_none() {
                        stalled = true;
                    }
                    // Fresh copies always stay parked during lockstep
                    // replay; receipts come from the released stale copies.
                    Disposition::Park
                });
                if let Some(v) = sys.violation() {
                    // A protocol can fall during lockstep replay too.
                    let report = ViolationReport {
                        violation: v,
                        execution: sys.execution().clone(),
                        messages_before_violation: sys.counts().sm,
                        forward_packets_sent: sys.fwd.total_sent(),
                    };
                    return (FalsifyOutcome::Violation(report), stages);
                }
                steps += 1;
            }

            // Completion: deliver fresh copies until the message lands; the
            // pool stays frozen.
            if sys.counts().rm < sys.counts().sm
                && !sys.run_to_quiescence(self.config.max_steps_per_phase)
            {
                return (
                    FalsifyOutcome::BudgetExhausted {
                        delivered: sys.counts().rm,
                        forward_packets_sent: sys.fwd.total_sent(),
                    },
                    stages,
                );
            }

            let histogram: BTreeMap<Packet, u64> = sys
                .fwd
                .parked_multiset()
                .histogram()
                .into_iter()
                .map(|(p, n)| (p, n as u64))
                .collect();
            stages.push(MfGrowthStage {
                message,
                sends_this_message: sys.fwd.total_sent() - sends_before,
                pool_size: sys.fwd.in_transit_len() as u64,
                pool_histogram: histogram,
            });
        }

        let report = SurvivalReport {
            messages_delivered: sys.counts().rm,
            forward_packets_sent: sys.fwd.total_sent(),
            final_in_transit: sys.counts().in_transit(Dir::Forward),
            peak_space_bytes: sys.peak_space_bytes(),
            distinct_forward_packets: sys.distinct_forward_packets(),
        };
        (FalsifyOutcome::Survived(report), stages)
    }

    fn pool_covers(&self, sys: &System, need: &BTreeMap<Packet, u64>) -> bool {
        need.iter()
            .all(|(&p, &n)| sys.fwd.packet_copies(p) as u64 >= n)
    }

    /// Replays the extension on a fork without a `send_msg`. Returns the
    /// violation evidence if the receiver delivers a phantom message.
    fn attempt_phantom_replay(&self, sys: &System, receipts: &[Packet]) -> Option<ViolationReport> {
        let mut fork = sys.clone();
        fork.replay_receipts(receipts);
        fork.violation().map(|violation| ViolationReport {
            violation,
            execution: fork.execution().clone(),
            messages_before_violation: fork.counts().sm,
            forward_packets_sent: fork.fwd.total_sent(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nonfifo_ioa::SpecViolation;
    use nonfifo_protocols::{AfekFlush, AlternatingBit, NaiveCycle, SequenceNumber, SlidingWindow};

    fn quick() -> MfFalsifier {
        MfFalsifier::new(MfConfig {
            max_messages: 32,
            max_steps_per_phase: 20_000,
            oracle_steps: 50_000,
        })
    }

    #[test]
    fn breaks_alternating_bit() {
        let (outcome, _) = quick().run_with_trace(&AlternatingBit::new());
        let FalsifyOutcome::Violation(report) = outcome else {
            panic!("expected violation, got {outcome:?}");
        };
        assert!(matches!(
            report.violation,
            SpecViolation::MessageInvented { .. }
        ));
        let c = report.execution.counts();
        assert_eq!(c.rm, c.sm + 1, "the paper's invalid execution shape");
    }

    #[test]
    fn breaks_naive_cycle_for_every_k() {
        for k in [2u32, 3, 5] {
            let outcome = quick().run(&NaiveCycle::new(k));
            assert!(
                outcome.is_violation(),
                "naive-cycle(k={k}) should fall: {outcome:?}"
            );
        }
    }

    #[test]
    fn breaks_sliding_window() {
        let outcome = quick().run(&SlidingWindow::new(2));
        assert!(outcome.is_violation(), "got {outcome:?}");
    }

    #[test]
    fn sequence_number_survives() {
        let (outcome, stages) = quick().run_with_trace(&SequenceNumber::new());
        let FalsifyOutcome::Survived(report) = outcome else {
            panic!("sequence numbers must survive, got {outcome:?}");
        };
        assert_eq!(report.messages_delivered, 32);
        // Space stays tiny even under attack (O(log n)).
        assert!(report.peak_space_bytes < 1024);
        assert_eq!(stages.len(), 32);
    }

    #[test]
    fn afek_flush_survives_by_paying() {
        let (outcome, stages) = quick().run_with_trace(&AfekFlush::new());
        let FalsifyOutcome::Survived(report) = outcome else {
            panic!("ghost-protected afek should survive, got {outcome:?}");
        };
        // The pool keeps growing…
        assert!(report.final_in_transit > 0);
        // …and per-message cost grows with it (the T3.1 trade-off).
        let early = stages[1].sends_this_message;
        let late = stages.last().unwrap().sends_this_message;
        assert!(
            late > early,
            "cost should grow with the pool: early {early}, late {late}"
        );
    }

    #[test]
    fn growth_stages_record_pool_monotonicity_for_survivors() {
        let (_, stages) = quick().run_with_trace(&SequenceNumber::new());
        for w in stages.windows(2) {
            assert!(w[1].pool_size >= w[0].pool_size);
        }
    }
}
