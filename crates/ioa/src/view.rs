//! Per-automaton views of executions and the indistinguishability relation.
//!
//! Every proof in the paper rests on one move: the physical layer replaces
//! the transmitter's fresh packets with delayed copies, and "`Aʳ` can not
//! distinguish between β and β′. Thus its actions in both executions are
//! the same." An automaton's *view* is the sequence of actions it
//! participates in, with copy identities erased (automata never see copy
//! ids — only the harness and the checkers do). Two executions are
//! indistinguishable to an automaton exactly when their views are equal.
//!
//! The falsifier tests use this to *verify* the simulation argument rather
//! than assume it: the receiver view of the replayed extension β′ must equal
//! the receiver view of the oracle's extension β.

use crate::event::Event;
use crate::execution::Execution;
use crate::message::Message;
use crate::packet::{Dir, Packet};

/// One action as seen by an automaton (copy identities erased).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ViewEvent {
    /// The automaton received `send_msg(m)` from the higher layer
    /// (transmitter only).
    SendMsg(Message),
    /// The automaton emitted `receive_msg(m)` (receiver only).
    ReceiveMsg(Message),
    /// The automaton sent packet `p` on its outgoing channel.
    SendPkt(Packet),
    /// The automaton received packet `p` from its incoming channel.
    ReceivePkt(Packet),
}

/// The receiver automaton `Aʳ`'s view: forward receipts, backward sends,
/// and deliveries, in order.
pub fn receiver_view(exec: &Execution) -> Vec<ViewEvent> {
    exec.iter()
        .filter_map(|e| match *e {
            Event::ReceiveMsg(m) => Some(ViewEvent::ReceiveMsg(m)),
            Event::ReceivePkt {
                dir: Dir::Forward,
                packet,
                ..
            } => Some(ViewEvent::ReceivePkt(packet)),
            Event::SendPkt {
                dir: Dir::Backward,
                packet,
                ..
            } => Some(ViewEvent::SendPkt(packet)),
            _ => None,
        })
        .collect()
}

/// The transmitter automaton `Aᵗ`'s view: message hand-overs, forward
/// sends, and backward receipts, in order.
pub fn transmitter_view(exec: &Execution) -> Vec<ViewEvent> {
    exec.iter()
        .filter_map(|e| match *e {
            Event::SendMsg(m) => Some(ViewEvent::SendMsg(m)),
            Event::SendPkt {
                dir: Dir::Forward,
                packet,
                ..
            } => Some(ViewEvent::SendPkt(packet)),
            Event::ReceivePkt {
                dir: Dir::Backward,
                packet,
                ..
            } => Some(ViewEvent::ReceivePkt(packet)),
            _ => None,
        })
        .collect()
}

/// True if `a` and `b` are indistinguishable to the receiver — the
/// relation the paper's simulation arguments rely on.
///
/// In the identical-message model the ghost ids of delivered messages
/// reflect delivery order, so equality of full views is exactly
/// "behaves identically".
///
/// # Example
///
/// ```
/// use nonfifo_ioa::view::receiver_indistinguishable;
/// use nonfifo_ioa::{Dir, Event, Execution, Header, CopyId, Packet};
///
/// let mk = |copy: u64| -> Execution {
///     vec![Event::ReceivePkt {
///         dir: Dir::Forward,
///         packet: Packet::header_only(Header::new(0)),
///         copy: CopyId::from_raw(copy),
///     }]
///     .into_iter()
///     .collect()
/// };
/// // Same packet value, different physical copies: indistinguishable.
/// assert!(receiver_indistinguishable(&mk(1), &mk(99)));
/// ```
pub fn receiver_indistinguishable(a: &Execution, b: &Execution) -> bool {
    receiver_view(a) == receiver_view(b)
}

/// True if `a` and `b` are indistinguishable to the transmitter.
pub fn transmitter_indistinguishable(a: &Execution, b: &Execution) -> bool {
    transmitter_view(a) == transmitter_view(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{CopyId, Header};

    fn recv_fwd(h: u32, c: u64) -> Event {
        Event::ReceivePkt {
            dir: Dir::Forward,
            packet: Packet::header_only(Header::new(h)),
            copy: CopyId::from_raw(c),
        }
    }

    fn send_fwd(h: u32, c: u64) -> Event {
        Event::SendPkt {
            dir: Dir::Forward,
            packet: Packet::header_only(Header::new(h)),
            copy: CopyId::from_raw(c),
        }
    }

    #[test]
    fn copy_identity_is_erased() {
        let a: Execution = vec![recv_fwd(0, 1)].into_iter().collect();
        let b: Execution = vec![recv_fwd(0, 42)].into_iter().collect();
        assert!(receiver_indistinguishable(&a, &b));
    }

    #[test]
    fn packet_value_is_not_erased() {
        let a: Execution = vec![recv_fwd(0, 1)].into_iter().collect();
        let b: Execution = vec![recv_fwd(1, 1)].into_iter().collect();
        assert!(!receiver_indistinguishable(&a, &b));
    }

    #[test]
    fn receiver_ignores_forward_sends() {
        // The receiver does not observe the transmitter's send actions,
        // only their (possibly substituted) arrivals.
        let a: Execution = vec![send_fwd(0, 1), recv_fwd(0, 1)].into_iter().collect();
        let b: Execution = vec![recv_fwd(0, 7)].into_iter().collect();
        assert!(receiver_indistinguishable(&a, &b));
        assert!(!transmitter_indistinguishable(&a, &b));
    }

    #[test]
    fn order_matters() {
        let a: Execution = vec![recv_fwd(0, 1), recv_fwd(1, 2)].into_iter().collect();
        let b: Execution = vec![recv_fwd(1, 2), recv_fwd(0, 1)].into_iter().collect();
        assert!(!receiver_indistinguishable(&a, &b));
    }

    #[test]
    fn views_project_the_right_actions() {
        let exec: Execution = vec![
            Event::SendMsg(Message::identical(0)),
            send_fwd(0, 1),
            recv_fwd(0, 1),
            Event::ReceiveMsg(Message::identical(0)),
            Event::SendPkt {
                dir: Dir::Backward,
                packet: Packet::header_only(Header::new(0)),
                copy: CopyId::from_raw(0),
            },
            Event::ReceivePkt {
                dir: Dir::Backward,
                packet: Packet::header_only(Header::new(0)),
                copy: CopyId::from_raw(0),
            },
        ]
        .into_iter()
        .collect();
        let rv = receiver_view(&exec);
        assert_eq!(rv.len(), 3); // fwd receipt, delivery, bwd send
        let tv = transmitter_view(&exec);
        assert_eq!(tv.len(), 3); // send_msg, fwd send, bwd receipt
    }
}
