//! The action vocabulary of a data-link protocol execution.

use crate::message::Message;
use crate::packet::{CopyId, Dir, Packet};
use std::fmt;

/// One action in an execution of the composed system
/// `Aᵗ ∥ PLᵗ→ʳ ∥ PLʳ→ᵗ ∥ Aʳ`.
///
/// The five variants correspond to the actions in the paper's §2 plus an
/// explicit `DropPkt` for channels that delete packets (the paper folds
/// deletion into "delayed forever"; recording drops makes the PL1 checker
/// stricter, since a dropped copy must never be delivered afterwards).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Event {
    /// `send_msg(m)` — the higher layer hands message `m` to `Aᵗ`.
    SendMsg(Message),
    /// `receive_msg(m)` — `Aʳ` delivers message `m` to the higher layer.
    ReceiveMsg(Message),
    /// `send_pkt(p)` — an automaton puts a fresh copy of packet `p` on the
    /// physical channel in direction `dir`.
    SendPkt {
        /// Which physical channel the packet was sent on.
        dir: Dir,
        /// The packet value.
        packet: Packet,
        /// Fresh identity of this copy.
        copy: CopyId,
    },
    /// `receive_pkt(p)` — the channel delivers copy `copy` of packet `p`.
    ReceivePkt {
        /// Which physical channel delivered the packet.
        dir: Dir,
        /// The packet value.
        packet: Packet,
        /// The delivered copy, matching an earlier [`Event::SendPkt`].
        copy: CopyId,
    },
    /// The channel deletes copy `copy`; it will never be delivered.
    DropPkt {
        /// Which physical channel dropped the packet.
        dir: Dir,
        /// The packet value.
        packet: Packet,
        /// The deleted copy.
        copy: CopyId,
    },
}

impl Event {
    /// The direction of the physical-channel action, if this is one.
    pub fn dir(&self) -> Option<Dir> {
        match *self {
            Event::SendPkt { dir, .. }
            | Event::ReceivePkt { dir, .. }
            | Event::DropPkt { dir, .. } => Some(dir),
            Event::SendMsg(_) | Event::ReceiveMsg(_) => None,
        }
    }

    /// The packet of the physical-channel action, if this is one.
    pub fn packet(&self) -> Option<Packet> {
        match *self {
            Event::SendPkt { packet, .. }
            | Event::ReceivePkt { packet, .. }
            | Event::DropPkt { packet, .. } => Some(packet),
            Event::SendMsg(_) | Event::ReceiveMsg(_) => None,
        }
    }

    /// True if this is a `send_msg` action.
    pub fn is_send_msg(&self) -> bool {
        matches!(self, Event::SendMsg(_))
    }

    /// True if this is a `receive_msg` action.
    pub fn is_receive_msg(&self) -> bool {
        matches!(self, Event::ReceiveMsg(_))
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Event::SendMsg(m) => write!(f, "send_msg({m})"),
            Event::ReceiveMsg(m) => write!(f, "receive_msg({m})"),
            Event::SendPkt { dir, packet, copy } => {
                write!(f, "send_pkt[{dir}]({packet}){copy}")
            }
            Event::ReceivePkt { dir, packet, copy } => {
                write!(f, "receive_pkt[{dir}]({packet}){copy}")
            }
            Event::DropPkt { dir, packet, copy } => {
                write!(f, "drop_pkt[{dir}]({packet}){copy}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::Header;

    fn pkt(h: u32) -> Packet {
        Packet::header_only(Header::new(h))
    }

    #[test]
    fn accessors() {
        let e = Event::SendPkt {
            dir: Dir::Forward,
            packet: pkt(1),
            copy: CopyId::from_raw(9),
        };
        assert_eq!(e.dir(), Some(Dir::Forward));
        assert_eq!(e.packet(), Some(pkt(1)));
        assert!(!e.is_send_msg());

        let m = Event::SendMsg(Message::identical(0));
        assert_eq!(m.dir(), None);
        assert_eq!(m.packet(), None);
        assert!(m.is_send_msg());
        assert!(Event::ReceiveMsg(Message::identical(0)).is_receive_msg());
    }

    #[test]
    fn display_is_readable() {
        let e = Event::ReceivePkt {
            dir: Dir::Backward,
            packet: pkt(2),
            copy: CopyId::from_raw(3),
        };
        assert_eq!(e.to_string(), "receive_pkt[r→t](h2)#3");
    }
}
