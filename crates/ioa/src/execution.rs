//! Recorded executions and the counters of the paper's Definition 2.

use crate::event::Event;
use crate::packet::Dir;
use std::fmt;
use std::ops::Index;

/// The action counters of Definition 2: for an execution `α`, `sm(α)` and
/// `rm(α)` count `send_msg` / `receive_msg` actions and `sp`/`rp` count
/// `send_pkt` / `receive_pkt` actions per channel direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Counts {
    /// `sm(α)` — number of `send_msg` actions.
    pub sm: u64,
    /// `rm(α)` — number of `receive_msg` actions.
    pub rm: u64,
    /// `spᵗ→ʳ(α)` — packets sent on the forward channel.
    pub sp_fwd: u64,
    /// `rpᵗ→ʳ(α)` — packets received from the forward channel.
    pub rp_fwd: u64,
    /// `spʳ→ᵗ(α)` — packets sent on the backward channel.
    pub sp_bwd: u64,
    /// `rpʳ→ᵗ(α)` — packets received from the backward channel.
    pub rp_bwd: u64,
    /// Packets dropped on the forward channel (not in the paper's counters;
    /// kept so `in_transit` is exact for deleting channels).
    pub dropped_fwd: u64,
    /// Packets dropped on the backward channel.
    pub dropped_bwd: u64,
}

impl Counts {
    /// Packets sent in direction `dir`.
    pub fn sp(&self, dir: Dir) -> u64 {
        match dir {
            Dir::Forward => self.sp_fwd,
            Dir::Backward => self.sp_bwd,
        }
    }

    /// Packets received in direction `dir`.
    pub fn rp(&self, dir: Dir) -> u64 {
        match dir {
            Dir::Forward => self.rp_fwd,
            Dir::Backward => self.rp_bwd,
        }
    }

    /// Packets dropped in direction `dir`.
    pub fn dropped(&self, dir: Dir) -> u64 {
        match dir {
            Dir::Forward => self.dropped_fwd,
            Dir::Backward => self.dropped_bwd,
        }
    }

    /// Packets currently delayed on the channel in direction `dir`:
    /// `sp − rp − dropped`. This is the quantity Theorem 4.1's `P_f`
    /// boundness is a function of.
    pub fn in_transit(&self, dir: Dir) -> u64 {
        self.sp(dir) - self.rp(dir) - self.dropped(dir)
    }

    fn apply(&mut self, event: &Event) {
        match *event {
            Event::SendMsg(_) => self.sm += 1,
            Event::ReceiveMsg(_) => self.rm += 1,
            Event::SendPkt { dir, .. } => match dir {
                Dir::Forward => self.sp_fwd += 1,
                Dir::Backward => self.sp_bwd += 1,
            },
            Event::ReceivePkt { dir, .. } => match dir {
                Dir::Forward => self.rp_fwd += 1,
                Dir::Backward => self.rp_bwd += 1,
            },
            Event::DropPkt { dir, .. } => match dir {
                Dir::Forward => self.dropped_fwd += 1,
                Dir::Backward => self.dropped_bwd += 1,
            },
        }
    }
}

impl fmt::Display for Counts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "sm={} rm={} sp[t→r]={} rp[t→r]={} sp[r→t]={} rp[r→t]={}",
            self.sm, self.rm, self.sp_fwd, self.rp_fwd, self.sp_bwd, self.rp_bwd
        )
    }
}

/// A recorded execution: a sequence of [`Event`]s with incrementally
/// maintained [`Counts`].
///
/// Executions can grow large; the simulation engine offers a counters-only
/// mode, but the adversary constructions record full executions because their
/// *output* is an execution (the invalid execution the theorems promise).
///
/// For workloads that clone executions by the million — the parallel
/// state-space explorer clones the whole composed system once per expanded
/// edge — [`counts_only`](Execution::counts_only) builds an execution that
/// maintains the counters but discards the events, making `clone` O(1)
/// instead of O(events). Violating paths are then re-materialised by
/// replaying the adversary schedule from scratch.
///
/// # Example
///
/// ```
/// use nonfifo_ioa::{Dir, Event, Execution, Message};
///
/// let mut exec = Execution::new();
/// exec.push(Event::SendMsg(Message::identical(0)));
/// assert_eq!(exec.counts().sm, 1);
/// assert_eq!(exec.counts().in_transit(Dir::Forward), 0);
/// ```
#[derive(Debug, Default, PartialEq, Eq)]
pub struct Execution {
    events: Vec<Event>,
    counts: Counts,
    counts_only: bool,
}

impl Clone for Execution {
    fn clone(&self) -> Self {
        Execution {
            events: self.events.clone(),
            counts: self.counts,
            counts_only: self.counts_only,
        }
    }

    /// Fieldwise `clone_from` so pooled clones reuse the event buffer.
    fn clone_from(&mut self, source: &Self) {
        self.events.clone_from(&source.events);
        self.counts = source.counts;
        self.counts_only = source.counts_only;
    }
}

impl Execution {
    /// Creates an empty execution.
    pub fn new() -> Self {
        Execution::default()
    }

    /// Creates an empty execution with room for `cap` events.
    pub fn with_capacity(cap: usize) -> Self {
        Execution {
            events: Vec::with_capacity(cap),
            counts: Counts::default(),
            counts_only: false,
        }
    }

    /// Creates an execution that maintains [`Counts`] but stores no events:
    /// `push` updates the counters and drops the event, so `clone` stays
    /// O(1) however long the run. `len`/`iter`/`events` see an empty event
    /// list.
    pub fn counts_only() -> Self {
        Execution {
            events: Vec::new(),
            counts: Counts::default(),
            counts_only: true,
        }
    }

    /// True if this execution discards events and keeps only counters.
    pub fn is_counts_only(&self) -> bool {
        self.counts_only
    }

    /// Appends an event.
    pub fn push(&mut self, event: Event) {
        self.counts.apply(&event);
        if !self.counts_only {
            self.events.push(event);
        }
    }

    /// The Definition 2 counters for the whole execution.
    pub fn counts(&self) -> Counts {
        self.counts
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Iterates over the events in order.
    pub fn iter(&self) -> std::slice::Iter<'_, Event> {
        self.events.iter()
    }

    /// The events as a slice.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Returns the execution consisting of the first `len` events.
    pub fn prefix(&self, len: usize) -> Execution {
        let mut out = Execution::with_capacity(len);
        for e in &self.events[..len] {
            out.push(*e);
        }
        out
    }

    /// Appends all events of `other` (the concatenation `α β` used
    /// throughout the paper's proofs).
    pub fn extend_from(&mut self, other: &Execution) {
        for e in other.iter() {
            self.push(*e);
        }
    }

    /// Index of the last `send_msg` event, if any.
    pub fn last_send_msg_index(&self) -> Option<usize> {
        self.events.iter().rposition(Event::is_send_msg)
    }

    /// A compact multi-line rendering for diagnostics (one event per line,
    /// truncated to the final `max` events).
    pub fn render_tail(&self, max: usize) -> String {
        use fmt::Write as _;
        let start = self.events.len().saturating_sub(max);
        let mut out = String::new();
        if start > 0 {
            let _ = writeln!(out, "… ({start} earlier events)");
        }
        for (i, e) in self.events.iter().enumerate().skip(start) {
            let _ = writeln!(out, "{i:>6}: {e}");
        }
        out
    }
}

impl Index<usize> for Execution {
    type Output = Event;

    fn index(&self, i: usize) -> &Event {
        &self.events[i]
    }
}

impl Extend<Event> for Execution {
    fn extend<I: IntoIterator<Item = Event>>(&mut self, iter: I) {
        for e in iter {
            self.push(e);
        }
    }
}

impl FromIterator<Event> for Execution {
    fn from_iter<I: IntoIterator<Item = Event>>(iter: I) -> Self {
        let mut exec = Execution::new();
        exec.extend(iter);
        exec
    }
}

impl<'a> IntoIterator for &'a Execution {
    type Item = &'a Event;
    type IntoIter = std::slice::Iter<'a, Event>;

    fn into_iter(self) -> Self::IntoIter {
        self.events.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Message;
    use crate::packet::{CopyId, Header, Packet};

    fn send(h: u32, c: u64) -> Event {
        Event::SendPkt {
            dir: Dir::Forward,
            packet: Packet::header_only(Header::new(h)),
            copy: CopyId::from_raw(c),
        }
    }

    fn recv(h: u32, c: u64) -> Event {
        Event::ReceivePkt {
            dir: Dir::Forward,
            packet: Packet::header_only(Header::new(h)),
            copy: CopyId::from_raw(c),
        }
    }

    #[test]
    fn counts_track_definition_2() {
        let mut exec = Execution::new();
        exec.push(Event::SendMsg(Message::identical(0)));
        exec.push(send(0, 1));
        exec.push(send(0, 2));
        exec.push(recv(0, 1));
        exec.push(Event::ReceiveMsg(Message::identical(0)));
        let c = exec.counts();
        assert_eq!((c.sm, c.rm), (1, 1));
        assert_eq!((c.sp_fwd, c.rp_fwd), (2, 1));
        assert_eq!(c.in_transit(Dir::Forward), 1);
        assert_eq!(c.in_transit(Dir::Backward), 0);
    }

    #[test]
    fn drop_reduces_in_transit() {
        let mut exec = Execution::new();
        exec.push(send(0, 1));
        exec.push(Event::DropPkt {
            dir: Dir::Forward,
            packet: Packet::header_only(Header::new(0)),
            copy: CopyId::from_raw(1),
        });
        assert_eq!(exec.counts().in_transit(Dir::Forward), 0);
    }

    #[test]
    fn prefix_recomputes_counts() {
        let mut exec = Execution::new();
        exec.push(Event::SendMsg(Message::identical(0)));
        exec.push(send(0, 1));
        exec.push(recv(0, 1));
        let p = exec.prefix(2);
        assert_eq!(p.len(), 2);
        assert_eq!(p.counts().rp_fwd, 0);
        assert_eq!(p.counts().sp_fwd, 1);
    }

    #[test]
    fn concatenation_matches_paper_notation() {
        let alpha: Execution = vec![Event::SendMsg(Message::identical(0))]
            .into_iter()
            .collect();
        let beta: Execution = vec![send(0, 1), recv(0, 1)].into_iter().collect();
        let mut alpha_beta = alpha.clone();
        alpha_beta.extend_from(&beta);
        assert_eq!(alpha_beta.len(), 3);
        assert_eq!(alpha_beta.counts().sm, 1);
        assert_eq!(alpha_beta.counts().rp_fwd, 1);
    }

    #[test]
    fn last_send_msg_index_finds_the_pending_message() {
        let mut exec = Execution::new();
        assert_eq!(exec.last_send_msg_index(), None);
        exec.push(Event::SendMsg(Message::identical(0)));
        exec.push(send(0, 1));
        exec.push(Event::SendMsg(Message::identical(1)));
        exec.push(send(0, 2));
        assert_eq!(exec.last_send_msg_index(), Some(2));
    }

    #[test]
    fn render_tail_truncates() {
        let mut exec = Execution::new();
        for i in 0..10 {
            exec.push(send(0, i));
        }
        let s = exec.render_tail(3);
        assert!(s.starts_with("… (7 earlier events)"));
        assert_eq!(s.lines().count(), 4);
    }
}
