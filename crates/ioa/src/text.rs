//! A plain-text serialization of executions.
//!
//! Violation traces are the primary artifact this repository produces; this
//! module gives them a stable, diff-able, round-trippable text form so they
//! can be stored, shared, and re-checked:
//!
//! ```text
//! send_msg m0
//! send_pkt fwd h0 #0
//! receive_pkt fwd h0 #0
//! receive_msg m0
//! ```
//!
//! The grammar is one event per line:
//!
//! ```text
//! send_msg    m<id> [payload=<hex>]
//! receive_msg m<id> [payload=<hex>]
//! send_pkt    (fwd|bwd) h<index> [payload=<hex>] #<copy>
//! receive_pkt (fwd|bwd) h<index> [payload=<hex>] #<copy>
//! drop_pkt    (fwd|bwd) h<index> [payload=<hex>] #<copy>
//! ```
//!
//! Blank lines and lines starting with `//` are ignored.

use crate::event::Event;
use crate::execution::Execution;
use crate::message::Message;
use crate::packet::{CopyId, Dir, Header, Packet, Payload};
use std::error::Error;
use std::fmt;
use std::fmt::Write as _;

/// A parse failure, with the 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTextError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseTextError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for ParseTextError {}

fn dir_token(dir: Dir) -> &'static str {
    match dir {
        Dir::Forward => "fwd",
        Dir::Backward => "bwd",
    }
}

fn write_msg(out: &mut String, m: &Message) {
    let _ = write!(out, "m{}", m.id().raw());
    if let Some(p) = m.payload() {
        let _ = write!(out, " payload={:x}", p.word());
    }
}

fn write_pkt(out: &mut String, p: &Packet) {
    let _ = write!(out, "h{}", p.header().index());
    if let Some(pl) = p.payload() {
        let _ = write!(out, " payload={:x}", pl.word());
    }
}

/// Serializes an execution, one event per line.
///
/// # Example
///
/// ```
/// use nonfifo_ioa::text::{parse_text, write_text};
/// use nonfifo_ioa::{Event, Execution, Message};
///
/// let exec: Execution = vec![Event::SendMsg(Message::identical(0))].into_iter().collect();
/// let s = write_text(&exec);
/// assert_eq!(s.trim(), "send_msg m0");
/// assert_eq!(parse_text(&s).unwrap(), exec);
/// ```
pub fn write_text(exec: &Execution) -> String {
    let mut out = String::new();
    for e in exec.iter() {
        match e {
            Event::SendMsg(m) => {
                out.push_str("send_msg ");
                write_msg(&mut out, m);
            }
            Event::ReceiveMsg(m) => {
                out.push_str("receive_msg ");
                write_msg(&mut out, m);
            }
            Event::SendPkt { dir, packet, copy } => {
                let _ = write!(out, "send_pkt {} ", dir_token(*dir));
                write_pkt(&mut out, packet);
                let _ = write!(out, " #{}", copy.raw());
            }
            Event::ReceivePkt { dir, packet, copy } => {
                let _ = write!(out, "receive_pkt {} ", dir_token(*dir));
                write_pkt(&mut out, packet);
                let _ = write!(out, " #{}", copy.raw());
            }
            Event::DropPkt { dir, packet, copy } => {
                let _ = write!(out, "drop_pkt {} ", dir_token(*dir));
                write_pkt(&mut out, packet);
                let _ = write!(out, " #{}", copy.raw());
            }
        }
        out.push('\n');
    }
    out
}

struct LineParser<'a> {
    tokens: std::str::SplitWhitespace<'a>,
    line: usize,
}

impl<'a> LineParser<'a> {
    fn err(&self, message: impl Into<String>) -> ParseTextError {
        ParseTextError {
            line: self.line,
            message: message.into(),
        }
    }

    fn next(&mut self, what: &str) -> Result<&'a str, ParseTextError> {
        self.tokens
            .next()
            .ok_or_else(|| self.err(format!("expected {what}")))
    }

    fn done(&mut self) -> Result<(), ParseTextError> {
        match self.tokens.next() {
            None => Ok(()),
            Some(t) => Err(self.err(format!("unexpected trailing token {t:?}"))),
        }
    }

    fn dir(&mut self) -> Result<Dir, ParseTextError> {
        match self.next("direction (fwd|bwd)")? {
            "fwd" => Ok(Dir::Forward),
            "bwd" => Ok(Dir::Backward),
            other => Err(self.err(format!("bad direction {other:?}"))),
        }
    }

    fn numeric<T: std::str::FromStr>(&self, token: &str, what: &str) -> Result<T, ParseTextError> {
        token
            .parse()
            .map_err(|_| self.err(format!("bad {what} in {token:?}")))
    }

    fn message(&mut self) -> Result<Message, ParseTextError> {
        let id_tok = self.next("message id (m<id>)")?;
        let Some(raw) = id_tok.strip_prefix('m') else {
            return Err(self.err(format!("expected m<id>, got {id_tok:?}")));
        };
        let id: u64 = self.numeric(raw, "message id")?;
        match self.tokens.clone().next() {
            Some(t) if t.starts_with("payload=") => {
                let t = self.next("payload")?;
                let hex = &t["payload=".len()..];
                let word = u64::from_str_radix(hex, 16)
                    .map_err(|_| self.err(format!("bad payload hex {hex:?}")))?;
                Ok(Message::with_payload(id, Payload::new(word)))
            }
            _ => Ok(Message::identical(id)),
        }
    }

    fn packet(&mut self) -> Result<Packet, ParseTextError> {
        let h_tok = self.next("header (h<index>)")?;
        let Some(raw) = h_tok.strip_prefix('h') else {
            return Err(self.err(format!("expected h<index>, got {h_tok:?}")));
        };
        let index: u32 = self.numeric(raw, "header index")?;
        match self.tokens.clone().next() {
            Some(t) if t.starts_with("payload=") => {
                let t = self.next("payload")?;
                let hex = &t["payload=".len()..];
                let word = u64::from_str_radix(hex, 16)
                    .map_err(|_| self.err(format!("bad payload hex {hex:?}")))?;
                Ok(Packet::new(Header::new(index), Payload::new(word)))
            }
            _ => Ok(Packet::header_only(Header::new(index))),
        }
    }

    fn copy(&mut self) -> Result<CopyId, ParseTextError> {
        let tok = self.next("copy id (#<copy>)")?;
        let Some(raw) = tok.strip_prefix('#') else {
            return Err(self.err(format!("expected #<copy>, got {tok:?}")));
        };
        let raw: u64 = self.numeric(raw, "copy id")?;
        Ok(CopyId::from_raw(raw))
    }
}

/// Parses the text form back into an [`Execution`].
///
/// # Errors
///
/// Returns a [`ParseTextError`] naming the offending line.
pub fn parse_text(input: &str) -> Result<Execution, ParseTextError> {
    let mut exec = Execution::new();
    for (i, line) in input.lines().enumerate() {
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with("//") {
            continue;
        }
        let mut p = LineParser {
            tokens: trimmed.split_whitespace(),
            line: i + 1,
        };
        let kind = p.next("event kind")?;
        let event = match kind {
            "send_msg" => Event::SendMsg(p.message()?),
            "receive_msg" => Event::ReceiveMsg(p.message()?),
            "send_pkt" => {
                let dir = p.dir()?;
                let packet = p.packet()?;
                let copy = p.copy()?;
                Event::SendPkt { dir, packet, copy }
            }
            "receive_pkt" => {
                let dir = p.dir()?;
                let packet = p.packet()?;
                let copy = p.copy()?;
                Event::ReceivePkt { dir, packet, copy }
            }
            "drop_pkt" => {
                let dir = p.dir()?;
                let packet = p.packet()?;
                let copy = p.copy()?;
                Event::DropPkt { dir, packet, copy }
            }
            other => return Err(p.err(format!("unknown event kind {other:?}"))),
        };
        p.done()?;
        exec.push(event);
    }
    Ok(exec)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Execution {
        vec![
            Event::SendMsg(Message::identical(0)),
            Event::SendPkt {
                dir: Dir::Forward,
                packet: Packet::header_only(Header::new(3)),
                copy: CopyId::from_raw(7),
            },
            Event::ReceivePkt {
                dir: Dir::Forward,
                packet: Packet::header_only(Header::new(3)),
                copy: CopyId::from_raw(7),
            },
            Event::ReceiveMsg(Message::identical(0)),
            Event::SendPkt {
                dir: Dir::Backward,
                packet: Packet::new(Header::new(1), Payload::new(0xbeef)),
                copy: CopyId::from_raw(0),
            },
            Event::DropPkt {
                dir: Dir::Backward,
                packet: Packet::new(Header::new(1), Payload::new(0xbeef)),
                copy: CopyId::from_raw(0),
            },
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn round_trip() {
        let exec = sample();
        let text = write_text(&exec);
        let back = parse_text(&text).expect("parse");
        assert_eq!(back, exec);
    }

    #[test]
    fn payload_messages_round_trip() {
        let exec: Execution = vec![
            Event::SendMsg(Message::with_payload(5, Payload::new(0xff))),
            Event::ReceiveMsg(Message::with_payload(5, Payload::new(0xff))),
        ]
        .into_iter()
        .collect();
        assert_eq!(parse_text(&write_text(&exec)).unwrap(), exec);
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = "\n// a comment\nsend_msg m2\n\n";
        let exec = parse_text(text).unwrap();
        assert_eq!(exec.len(), 1);
        assert_eq!(exec.counts().sm, 1);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let text = "send_msg m0\nbogus_event x\n";
        let err = parse_text(text).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("bogus_event"));
    }

    #[test]
    fn rejects_malformed_tokens() {
        assert!(parse_text("send_msg 0").is_err());
        assert!(parse_text("send_pkt sideways h0 #1").is_err());
        assert!(parse_text("send_pkt fwd h0 1").is_err());
        assert!(parse_text("send_pkt fwd h0 #1 extra").is_err());
        assert!(parse_text("receive_msg mX").is_err());
        assert!(parse_text("send_msg m1 payload=zz").is_err());
    }

    #[test]
    fn text_is_stable_and_readable() {
        let text = write_text(&sample());
        assert!(text.starts_with("send_msg m0\n"));
        assert!(text.contains("send_pkt fwd h3 #7"));
        assert!(text.contains("send_pkt bwd h1 payload=beef #0"));
    }
}
