//! The data-link alphabet: messages and their ghost identities.

use crate::packet::Payload;
use std::fmt;

/// A ghost identifier for a message instance.
///
/// The paper's lower bounds assume all messages are identical; protocols must
/// not be able to tell messages apart by content. The simulation harness
/// still needs to check the DL1/DL2 correspondence, so every `send_msg` is
/// stamped with a `MsgId` that the *specification checkers* may inspect but
/// that no [`Packet`](crate::Packet) can carry. Protocols receive the id as
/// part of [`Message`] purely so they can echo it back on delivery when they
/// legitimately transport it inside an unbounded header (e.g. the
/// sequence-number protocol); bounded-header protocols deliver
/// [`Message::identical`] reconstructions instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MsgId(u64);

impl MsgId {
    /// Creates a message id from a raw sequence number.
    pub const fn from_raw(raw: u64) -> Self {
        MsgId(raw)
    }

    /// The raw sequence number.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for MsgId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// A message handed to the data-link layer at the transmitting station, or
/// delivered by it at the receiving station.
///
/// # Example
///
/// ```
/// use nonfifo_ioa::{Message, Payload};
/// let m = Message::with_payload(0, Payload::new(0xCAFE));
/// assert_eq!(m.payload(), Some(Payload::new(0xCAFE)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Message {
    id: MsgId,
    payload: Option<Payload>,
}

impl Message {
    /// Creates the `seq`-th identical message (the paper's model: payload-less).
    pub const fn identical(seq: u64) -> Self {
        Message {
            id: MsgId::from_raw(seq),
            payload: None,
        }
    }

    /// Creates the `seq`-th message carrying an application payload.
    pub const fn with_payload(seq: u64, payload: Payload) -> Self {
        Message {
            id: MsgId::from_raw(seq),
            payload: Some(payload),
        }
    }

    /// The ghost identity of this message instance.
    pub const fn id(self) -> MsgId {
        self.id
    }

    /// The application payload, if any.
    pub const fn payload(self) -> Option<Payload> {
        self.payload
    }
}

impl fmt::Display for Message {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.payload {
            Some(p) => write!(f, "{}⟨{}⟩", self.id, p),
            None => write!(f, "{}", self.id),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_messages_differ_only_by_ghost_id() {
        let a = Message::identical(0);
        let b = Message::identical(1);
        assert_eq!(a.payload(), b.payload());
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn payload_roundtrip() {
        let m = Message::with_payload(3, Payload::new(9));
        assert_eq!(m.id().raw(), 3);
        assert_eq!(m.payload().map(Payload::word), Some(9));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Message::identical(2).to_string(), "m2");
        assert_eq!(
            Message::with_payload(2, Payload::new(16)).to_string(),
            "m2⟨0x10⟩"
        );
    }
}
