//! The physical-layer alphabet: headers, packets, copy identities, and
//! channel directions.

use std::fmt;

/// A packet header — an element of the paper's packet alphabet `P`.
///
/// The lower bounds assume all messages are identical, so the protocol can
/// only distinguish packets by the extra information it appends; the paper
/// calls `|P|` the *number of headers* (§2.3). A protocol "with `k` headers"
/// is a protocol that only ever sends packets whose header index is `< k` on
/// the transmitter-to-receiver channel.
///
/// # Example
///
/// ```
/// use nonfifo_ioa::Header;
/// let h = Header::new(3);
/// assert_eq!(h.index(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Header(u32);

impl Header {
    /// Creates a header with the given index in the packet alphabet.
    pub const fn new(index: u32) -> Self {
        Header(index)
    }

    /// The index of this header within the packet alphabet.
    pub const fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Display for Header {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "h{}", self.0)
    }
}

impl From<u32> for Header {
    fn from(index: u32) -> Self {
        Header(index)
    }
}

/// An application payload word.
///
/// The lower-bound experiments run in the paper's identical-message model and
/// never use payloads; the practical protocols (`SequenceNumber`,
/// `SlidingWindow`) may carry one so that downstream users get a real
/// data-transfer service.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Payload(u64);

impl Payload {
    /// Wraps a payload word.
    pub const fn new(word: u64) -> Self {
        Payload(word)
    }

    /// The payload word.
    pub const fn word(self) -> u64 {
        self.0
    }
}

impl fmt::Display for Payload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl From<u64> for Payload {
    fn from(word: u64) -> Self {
        Payload(word)
    }
}

/// A packet: a header plus an optional payload.
///
/// Packet *identity* (the `Eq`/`Ord`/`Hash` impls) covers both fields: two
/// packets are "the same packet" in the sense of the paper exactly when they
/// are indistinguishable to the receiving automaton. In the identical-message
/// model payloads are `None` and packet identity reduces to the header.
///
/// # Example
///
/// ```
/// use nonfifo_ioa::{Header, Packet};
/// let p = Packet::header_only(Header::new(1));
/// assert_eq!(p.header().index(), 1);
/// assert!(p.payload().is_none());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Packet {
    header: Header,
    payload: Option<Payload>,
}

impl Packet {
    /// Creates a packet carrying a payload.
    pub const fn new(header: Header, payload: Payload) -> Self {
        Packet {
            header,
            payload: Some(payload),
        }
    }

    /// Creates a payload-less packet (the identical-message model).
    pub const fn header_only(header: Header) -> Self {
        Packet {
            header,
            payload: None,
        }
    }

    /// The packet's header.
    pub const fn header(self) -> Header {
        self.header
    }

    /// The packet's payload, if any.
    pub const fn payload(self) -> Option<Payload> {
        self.payload
    }
}

impl fmt::Display for Packet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.payload {
            Some(p) => write!(f, "{}⟨{}⟩", self.header, p),
            None => write!(f, "{}", self.header),
        }
    }
}

/// The identity of one *copy* of a packet in flight.
///
/// Every `send_pkt` action mints a fresh `CopyId`; the matching
/// `receive_pkt` (if any) references the same copy. This is what makes PL1 —
/// "each receive corresponds to a unique preceding send, each send to at most
/// one receive" — checkable in constant time per event, and it is what lets
/// the adversaries *replay* a specific delayed copy, the engine of every
/// proof in the paper.
///
/// Copy ids are unique per channel instance; an event pairs a copy id with a
/// [`Dir`], and the pair is globally unique within an execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CopyId(u64);

impl CopyId {
    /// Creates a copy id from a raw counter value.
    pub const fn from_raw(raw: u64) -> Self {
        CopyId(raw)
    }

    /// The raw counter value.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for CopyId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// Direction of a physical channel in the composed system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Dir {
    /// Transmitter to receiver (`t → r`): data packets.
    Forward,
    /// Receiver to transmitter (`r → t`): acknowledgement packets.
    Backward,
}

impl Dir {
    /// Both directions, forward first.
    pub const BOTH: [Dir; 2] = [Dir::Forward, Dir::Backward];

    /// The opposite direction.
    pub const fn opposite(self) -> Dir {
        match self {
            Dir::Forward => Dir::Backward,
            Dir::Backward => Dir::Forward,
        }
    }
}

impl fmt::Display for Dir {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Dir::Forward => write!(f, "t→r"),
            Dir::Backward => write!(f, "r→t"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_roundtrip() {
        let h = Header::new(7);
        assert_eq!(h.index(), 7);
        assert_eq!(Header::from(7u32), h);
        assert_eq!(h.to_string(), "h7");
    }

    #[test]
    fn packet_identity_includes_payload() {
        let a = Packet::header_only(Header::new(0));
        let b = Packet::new(Header::new(0), Payload::new(1));
        assert_ne!(a, b);
        assert_eq!(a.header(), b.header());
    }

    #[test]
    fn packet_display() {
        let p = Packet::new(Header::new(2), Payload::new(255));
        assert_eq!(p.to_string(), "h2⟨0xff⟩");
        assert_eq!(Packet::header_only(Header::new(2)).to_string(), "h2");
    }

    #[test]
    fn dir_opposite_is_involutive() {
        for d in Dir::BOTH {
            assert_eq!(d.opposite().opposite(), d);
        }
        assert_ne!(Dir::Forward, Dir::Backward);
    }

    #[test]
    fn copy_id_ordering_follows_mint_order() {
        assert!(CopyId::from_raw(1) < CopyId::from_raw(2));
        assert_eq!(CopyId::from_raw(5).raw(), 5);
    }

    #[test]
    fn headers_are_ordered_by_index() {
        let mut hs = vec![Header::new(3), Header::new(1), Header::new(2)];
        hs.sort();
        assert_eq!(hs, vec![Header::new(1), Header::new(2), Header::new(3)]);
    }
}
