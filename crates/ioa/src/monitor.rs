//! An incremental specification monitor for long-running simulations.
//!
//! [`crate::spec`] checks a recorded [`Execution`](crate::Execution) after
//! the fact; this monitor checks PL1 and the identical-message form of
//! DL1/DL2 *online*, in O(1) amortised time and O(in-transit) space, so the
//! simulation engine can run millions of events without retaining the trace.

use crate::event::Event;
use crate::fingerprint::Fnv64;
use crate::packet::{CopyId, Dir, Packet};
use crate::spec::SpecViolation;
use std::collections::HashMap;
use std::hash::BuildHasherDefault;

/// Copy-state map keyed by the fixed-key FNV-64 hasher: `CopyId`s are small
/// sequential integers, so the cheap hash wins over SipHash and stays
/// deterministic across runs.
type CopyMap = HashMap<CopyId, CopyState, BuildHasherDefault<Fnv64>>;

#[derive(Debug, Clone, Copy, PartialEq)]
enum CopyState {
    Sent(Packet),
    Delivered,
    Dropped,
}

/// Online checker for PL1 (both directions) and the prefix-count form of
/// DL1 (`rm ≤ sm` at every prefix — exact for the identical-message model).
///
/// # Example
///
/// ```
/// use nonfifo_ioa::{Event, Message, SpecMonitor};
///
/// let mut mon = SpecMonitor::new();
/// mon.observe(&Event::SendMsg(Message::identical(0))).unwrap();
/// mon.observe(&Event::ReceiveMsg(Message::identical(0))).unwrap();
/// // A second delivery with no matching send violates DL1.
/// assert!(mon.observe(&Event::ReceiveMsg(Message::identical(1))).is_err());
/// ```
#[derive(Debug, Default)]
pub struct SpecMonitor {
    copies_fwd: CopyMap,
    copies_bwd: CopyMap,
    sm: u64,
    rm: u64,
    events_seen: u64,
    first_violation: Option<SpecViolation>,
    convergence_mode: bool,
    overdeliveries: u64,
    last_overdelivery_index: Option<usize>,
}

impl Clone for SpecMonitor {
    fn clone(&self) -> Self {
        SpecMonitor {
            copies_fwd: self.copies_fwd.clone(),
            copies_bwd: self.copies_bwd.clone(),
            sm: self.sm,
            rm: self.rm,
            events_seen: self.events_seen,
            first_violation: self.first_violation,
            convergence_mode: self.convergence_mode,
            overdeliveries: self.overdeliveries,
            last_overdelivery_index: self.last_overdelivery_index,
        }
    }

    /// Fieldwise `clone_from` so monitor clones in the explorer's pooled
    /// systems reuse the copy-map allocations. `HashMap::clone_from`
    /// reallocates whenever the two tables' bucket counts differ — which
    /// for maps of varying size is nearly always — so the maps are refilled
    /// via clear + extend instead: `clear` keeps the buckets, and a table
    /// only grows when the source outsizes everything the target has held.
    fn clone_from(&mut self, source: &Self) {
        self.copies_fwd.clear();
        self.copies_fwd
            .extend(source.copies_fwd.iter().map(|(&k, &v)| (k, v)));
        self.copies_bwd.clear();
        self.copies_bwd
            .extend(source.copies_bwd.iter().map(|(&k, &v)| (k, v)));
        self.sm = source.sm;
        self.rm = source.rm;
        self.events_seen = source.events_seen;
        self.first_violation = source.first_violation;
        self.convergence_mode = source.convergence_mode;
        self.overdeliveries = source.overdeliveries;
        self.last_overdelivery_index = source.last_overdelivery_index;
    }
}

impl SpecMonitor {
    /// Creates a monitor with no observed events.
    pub fn new() -> Self {
        SpecMonitor::default()
    }

    /// Creates a monitor in *convergence mode*, for runs started from a
    /// corrupted state.
    ///
    /// PL1 stays fatal — the physical layer is not what corruption excuses,
    /// and chaos fault plans must remain checkable — but the prefix-count
    /// form of DL1 (`rm ≤ sm`) is *tracked* rather than latched: a run from
    /// a poisoned state legitimately drains phantom deliveries before it
    /// stabilizes, and once `rm > sm` the prefix counts never recover, so
    /// latching would condemn every corrupted start unconditionally.
    /// Convergence is instead judged after the fact by
    /// [`ConvergenceSpec`](crate::spec::ConvergenceSpec) on the retained
    /// execution; the monitor exposes
    /// [`overdeliveries`](Self::overdeliveries) and
    /// [`last_overdelivery_index`](Self::last_overdelivery_index) as cheap
    /// online diagnostics.
    pub fn convergence() -> Self {
        SpecMonitor {
            convergence_mode: true,
            ..SpecMonitor::default()
        }
    }

    /// True if this monitor tracks rather than latches DL overdeliveries.
    pub fn is_convergence_mode(&self) -> bool {
        self.convergence_mode
    }

    /// Convergence mode only: number of `receive_msg` events observed while
    /// `rm > sm` (phantom deliveries drained from the corrupted state).
    pub fn overdeliveries(&self) -> u64 {
        self.overdeliveries
    }

    /// Convergence mode only: event index of the most recent overdelivery —
    /// a lower bound on where a legal suffix can start.
    pub fn last_overdelivery_index(&self) -> Option<usize> {
        self.last_overdelivery_index
    }

    /// Number of events observed so far.
    pub fn events_seen(&self) -> u64 {
        self.events_seen
    }

    /// The first violation observed, if any (also returned by the failing
    /// [`observe`](Self::observe) call).
    pub fn first_violation(&self) -> Option<SpecViolation> {
        self.first_violation
    }

    /// `sm − rm`: messages accepted but not yet delivered.
    pub fn outstanding_messages(&self) -> u64 {
        self.sm - self.rm.min(self.sm)
    }

    /// `sm`: messages accepted from the higher layer so far.
    pub fn messages_sent(&self) -> u64 {
        self.sm
    }

    /// `rm`: messages delivered to the higher layer so far.
    pub fn messages_delivered(&self) -> u64 {
        self.rm
    }

    /// Feeds one event to the monitor.
    ///
    /// # Errors
    ///
    /// Returns the violation if this event breaks PL1 or prefix-DL1. The
    /// monitor latches the first violation but keeps accepting events, so a
    /// caller may continue a run for diagnostics.
    pub fn observe(&mut self, event: &Event) -> Result<(), SpecViolation> {
        self.events_seen += 1;
        let result = self.observe_inner(event);
        if let Err(v) = result {
            self.first_violation.get_or_insert(v);
            return Err(v);
        }
        Ok(())
    }

    fn copies(&mut self, dir: Dir) -> &mut CopyMap {
        match dir {
            Dir::Forward => &mut self.copies_fwd,
            Dir::Backward => &mut self.copies_bwd,
        }
    }

    fn observe_inner(&mut self, event: &Event) -> Result<(), SpecViolation> {
        match *event {
            Event::SendMsg(_) => {
                self.sm += 1;
                Ok(())
            }
            Event::ReceiveMsg(_) => {
                self.rm += 1;
                if self.rm > self.sm {
                    let event_index = (self.events_seen - 1) as usize;
                    if self.convergence_mode {
                        self.overdeliveries += 1;
                        self.last_overdelivery_index = Some(event_index);
                        Ok(())
                    } else {
                        Err(SpecViolation::MessageInvented { event_index })
                    }
                } else {
                    Ok(())
                }
            }
            Event::SendPkt { dir, packet, copy } => {
                self.copies(dir).insert(copy, CopyState::Sent(packet));
                Ok(())
            }
            Event::ReceivePkt { dir, packet, copy } => {
                let state = self.copies(dir).get(&copy).copied();
                match state {
                    None => Err(SpecViolation::UnsentDelivery { dir, copy }),
                    Some(CopyState::Delivered) => {
                        Err(SpecViolation::DuplicateDelivery { dir, copy })
                    }
                    Some(CopyState::Dropped) => {
                        Err(SpecViolation::DeliveredAfterDrop { dir, copy })
                    }
                    Some(CopyState::Sent(sent)) => {
                        if sent != packet {
                            Err(SpecViolation::CorruptedDelivery { dir, copy })
                        } else {
                            self.copies(dir).insert(copy, CopyState::Delivered);
                            Ok(())
                        }
                    }
                }
            }
            Event::DropPkt { dir, copy, .. } => {
                self.copies(dir).insert(copy, CopyState::Dropped);
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Message;
    use crate::packet::Header;

    fn sp(c: u64) -> Event {
        Event::SendPkt {
            dir: Dir::Forward,
            packet: Packet::header_only(Header::new(0)),
            copy: CopyId::from_raw(c),
        }
    }

    fn rp(c: u64) -> Event {
        Event::ReceivePkt {
            dir: Dir::Forward,
            packet: Packet::header_only(Header::new(0)),
            copy: CopyId::from_raw(c),
        }
    }

    #[test]
    fn accepts_matched_stream() {
        let mut mon = SpecMonitor::new();
        for e in [sp(1), sp(2), rp(2), rp(1)] {
            mon.observe(&e).expect("ok");
        }
        assert_eq!(mon.events_seen(), 4);
        assert_eq!(mon.first_violation(), None);
    }

    #[test]
    fn latches_first_violation_but_keeps_running() {
        let mut mon = SpecMonitor::new();
        mon.observe(&sp(1)).unwrap();
        mon.observe(&rp(1)).unwrap();
        let v = mon.observe(&rp(1)).unwrap_err();
        assert!(matches!(v, SpecViolation::DuplicateDelivery { .. }));
        // Still accepts further (fine) events.
        mon.observe(&sp(2)).unwrap();
        assert_eq!(mon.first_violation(), Some(v));
    }

    #[test]
    fn prefix_dl1() {
        let mut mon = SpecMonitor::new();
        mon.observe(&Event::SendMsg(Message::identical(0))).unwrap();
        assert_eq!(mon.outstanding_messages(), 1);
        mon.observe(&Event::ReceiveMsg(Message::identical(0)))
            .unwrap();
        assert_eq!(mon.outstanding_messages(), 0);
        assert!(mon
            .observe(&Event::ReceiveMsg(Message::identical(1)))
            .is_err());
    }

    #[test]
    fn convergence_mode_tracks_overdeliveries_without_latching() {
        let mut mon = SpecMonitor::convergence();
        assert!(mon.is_convergence_mode());
        // Phantom deliveries from a corrupted start: tracked, not fatal.
        mon.observe(&Event::ReceiveMsg(Message::identical(90)))
            .unwrap();
        mon.observe(&Event::ReceiveMsg(Message::identical(91)))
            .unwrap();
        assert_eq!(mon.overdeliveries(), 2);
        assert_eq!(mon.last_overdelivery_index(), Some(1));
        assert_eq!(mon.first_violation(), None);
        // PL1 stays fatal even in convergence mode.
        assert!(mon.observe(&rp(1)).is_err());
        assert!(mon.first_violation().is_some());
    }

    #[test]
    fn convergence_mode_counts_continuing_overdelivery() {
        // rm stays ahead of sm: every further delivery while rm > sm counts.
        let mut mon = SpecMonitor::convergence();
        mon.observe(&Event::ReceiveMsg(Message::identical(0)))
            .unwrap();
        mon.observe(&Event::SendMsg(Message::identical(0))).unwrap();
        mon.observe(&Event::ReceiveMsg(Message::identical(0)))
            .unwrap();
        assert_eq!(mon.overdeliveries(), 2);
        assert_eq!(mon.last_overdelivery_index(), Some(2));
    }

    #[test]
    fn directions_are_independent() {
        let mut mon = SpecMonitor::new();
        mon.observe(&sp(7)).unwrap();
        // Same copy id on the other direction was never sent there.
        let e = Event::ReceivePkt {
            dir: Dir::Backward,
            packet: Packet::header_only(Header::new(0)),
            copy: CopyId::from_raw(7),
        };
        assert!(mon.observe(&e).is_err());
    }
}
