//! ASCII sequence diagrams for executions.
//!
//! Renders an execution as three lanes — transmitter, channel, receiver —
//! one line per event, so a violation trace reads like the figures in a
//! networking textbook:
//!
//! ```text
//! Aᵗ                    channel                    Aʳ
//! ● send_msg m0          .                          .
//! ├─ h0 #0 ──────────▶   .                          .
//! .                      .            ──────────▶ h0 #0 ─┤
//! .                      .              receive_msg m0 ●
//! ```

use crate::event::Event;
use crate::execution::Execution;
use crate::packet::Dir;
use std::fmt::Write as _;

const LANE: usize = 26;

fn pad(s: &str, width: usize) -> String {
    let len = s.chars().count();
    if len >= width {
        s.to_string()
    } else {
        format!("{s}{}", " ".repeat(width - len))
    }
}

/// Renders `exec` as a three-lane ASCII sequence diagram.
///
/// # Example
///
/// ```
/// use nonfifo_ioa::diagram::render;
/// use nonfifo_ioa::{Event, Execution, Message};
///
/// let exec: Execution = vec![Event::SendMsg(Message::identical(0))].into_iter().collect();
/// let d = render(&exec);
/// assert!(d.contains("send_msg m0"));
/// ```
pub fn render(exec: &Execution) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{}{}receiver",
        pad("transmitter", LANE),
        pad("channel", LANE)
    );
    for event in exec.iter() {
        let (tx_lane, ch_lane, rx_lane) = match *event {
            Event::SendMsg(m) => (format!("* send_msg {m}"), String::new(), String::new()),
            Event::ReceiveMsg(m) => (String::new(), String::new(), format!("* receive_msg {m}")),
            Event::SendPkt { dir, packet, copy } => match dir {
                Dir::Forward => (
                    format!("|- {packet}{copy} -->"),
                    "...".into(),
                    String::new(),
                ),
                Dir::Backward => (
                    String::new(),
                    "...".into(),
                    format!("<-- {packet}{copy} -|"),
                ),
            },
            Event::ReceivePkt { dir, packet, copy } => match dir {
                Dir::Forward => (String::new(), "-->".into(), format!("-> {packet}{copy} -|")),
                Dir::Backward => (format!("|- {packet}{copy} <-"), "<--".into(), String::new()),
            },
            Event::DropPkt { dir, packet, copy } => (
                String::new(),
                format!(
                    "x dropped {packet}{copy} [{}]",
                    match dir {
                        Dir::Forward => "t->r",
                        Dir::Backward => "r->t",
                    }
                ),
                String::new(),
            ),
        };
        let _ = writeln!(
            out,
            "{}{}{}",
            pad(&tx_lane, LANE),
            pad(&ch_lane, LANE),
            rx_lane
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Message;
    use crate::packet::{CopyId, Header, Packet};

    fn sample() -> Execution {
        vec![
            Event::SendMsg(Message::identical(0)),
            Event::SendPkt {
                dir: Dir::Forward,
                packet: Packet::header_only(Header::new(0)),
                copy: CopyId::from_raw(0),
            },
            Event::ReceivePkt {
                dir: Dir::Forward,
                packet: Packet::header_only(Header::new(0)),
                copy: CopyId::from_raw(0),
            },
            Event::ReceiveMsg(Message::identical(0)),
            Event::SendPkt {
                dir: Dir::Backward,
                packet: Packet::header_only(Header::new(0)),
                copy: CopyId::from_raw(0),
            },
            Event::DropPkt {
                dir: Dir::Backward,
                packet: Packet::header_only(Header::new(0)),
                copy: CopyId::from_raw(0),
            },
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn renders_every_event_on_its_own_line() {
        let d = render(&sample());
        // Header line + one line per event.
        assert_eq!(d.lines().count(), 1 + sample().len());
    }

    #[test]
    fn lanes_carry_the_right_actions() {
        let d = render(&sample());
        let lines: Vec<&str> = d.lines().collect();
        assert!(lines[1].starts_with("* send_msg m0"));
        assert!(lines[2].starts_with("|- h0#0 -->"));
        assert!(lines[3].contains("-> h0#0 -|"));
        assert!(lines[4].contains("* receive_msg m0"));
        assert!(lines[5].contains("<-- h0#0 -|"));
        assert!(lines[6].contains("dropped h0#0"));
    }

    #[test]
    fn empty_execution_is_just_the_header() {
        let d = render(&Execution::new());
        assert_eq!(d.lines().count(), 1);
        assert!(d.contains("transmitter"));
    }
}
