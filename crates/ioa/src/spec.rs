//! Checkers for the physical-layer and data-link-layer specifications of
//! §2.1–§2.2 of the paper, plus validity and semi-validity (Definitions 3–4).
//!
//! - **PL1** (physical safety): every `receive_pkt` corresponds to a unique
//!   preceding `send_pkt`; no copy is delivered twice, delivered unsent, or
//!   delivered after being dropped.
//! - **PL2** (physical liveness) only constrains infinite executions; for
//!   finite traces we expose [`max_send_burst_without_receive`], the longest
//!   run of sends with no delivery, which experiments bound.
//! - **DL1** (data-link safety): a correspondence matches every
//!   `receive_msg` to a unique preceding `send_msg`.
//! - **DL2** (FIFO): the correspondence is order-preserving.
//! - **DL3** (liveness): finite surrogate — a *quiescent* execution has
//!   delivered every sent message ([`check_dl3_quiescent`]).
//!
//! The invalid executions constructed by Theorems 3.1 and 4.1 have
//! `rm(α) = sm(α) + 1`; [`check_dl1`] rejects exactly those.

use crate::event::Event;
use crate::execution::Execution;
use crate::message::Message;
use crate::packet::{CopyId, Dir, Packet};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// A violation of one of the layer specifications.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpecViolation {
    /// PL1(1): a copy was delivered that was never sent.
    UnsentDelivery {
        /// Channel direction.
        dir: Dir,
        /// The offending copy.
        copy: CopyId,
    },
    /// PL1(2): a copy was delivered twice.
    DuplicateDelivery {
        /// Channel direction.
        dir: Dir,
        /// The offending copy.
        copy: CopyId,
    },
    /// PL1: a copy was delivered after the channel dropped it.
    DeliveredAfterDrop {
        /// Channel direction.
        dir: Dir,
        /// The offending copy.
        copy: CopyId,
    },
    /// PL1(1): a delivered copy's packet value differs from the sent value
    /// (the physical layer must not corrupt packets).
    CorruptedDelivery {
        /// Channel direction.
        dir: Dir,
        /// The offending copy.
        copy: CopyId,
    },
    /// DL1: a `receive_msg` has no corresponding unmatched preceding
    /// `send_msg` — the receiver invented or duplicated a message.
    MessageInvented {
        /// Index of the offending `receive_msg` event.
        event_index: usize,
    },
    /// DL2: no order-preserving correspondence exists — messages were
    /// reordered.
    MessageReordered {
        /// Index of the offending `receive_msg` event.
        event_index: usize,
    },
    /// DL3 (finite surrogate): a quiescent execution left messages
    /// undelivered.
    MessagesUndelivered {
        /// `sm(α) − rm(α)` at the end of the execution.
        outstanding: u64,
    },
}

impl fmt::Display for SpecViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            SpecViolation::UnsentDelivery { dir, copy } => {
                write!(
                    f,
                    "PL1 violated on {dir}: copy {copy} delivered but never sent"
                )
            }
            SpecViolation::DuplicateDelivery { dir, copy } => {
                write!(f, "PL1 violated on {dir}: copy {copy} delivered twice")
            }
            SpecViolation::DeliveredAfterDrop { dir, copy } => {
                write!(
                    f,
                    "PL1 violated on {dir}: copy {copy} delivered after being dropped"
                )
            }
            SpecViolation::CorruptedDelivery { dir, copy } => {
                write!(
                    f,
                    "PL1 violated on {dir}: copy {copy} delivered with a corrupted value"
                )
            }
            SpecViolation::MessageInvented { event_index } => write!(
                f,
                "DL1 violated: receive_msg at event {event_index} has no corresponding send_msg"
            ),
            SpecViolation::MessageReordered { event_index } => write!(
                f,
                "DL2 violated: receive_msg at event {event_index} breaks FIFO order"
            ),
            SpecViolation::MessagesUndelivered { outstanding } => write!(
                f,
                "DL3 violated: execution quiesced with {outstanding} undelivered message(s)"
            ),
        }
    }
}

impl Error for SpecViolation {}

/// Checks PL1 on channel `dir`: deliveries correspond one-to-one to
/// preceding sends of uncorrupted copies, and dropped copies stay dropped.
///
/// # Errors
///
/// Returns the first [`SpecViolation`] encountered, in event order.
pub fn check_pl1(exec: &Execution, dir: Dir) -> Result<(), SpecViolation> {
    #[derive(Clone, Copy, PartialEq)]
    enum CopyState {
        Sent(Packet),
        Delivered,
        Dropped,
    }
    let mut copies: HashMap<CopyId, CopyState> = HashMap::new();
    for event in exec.iter() {
        match *event {
            Event::SendPkt {
                dir: d,
                packet,
                copy,
            } if d == dir => {
                copies.insert(copy, CopyState::Sent(packet));
            }
            Event::ReceivePkt {
                dir: d,
                packet,
                copy,
            } if d == dir => match copies.get(&copy) {
                None => return Err(SpecViolation::UnsentDelivery { dir, copy }),
                Some(CopyState::Delivered) => {
                    return Err(SpecViolation::DuplicateDelivery { dir, copy })
                }
                Some(CopyState::Dropped) => {
                    return Err(SpecViolation::DeliveredAfterDrop { dir, copy })
                }
                Some(CopyState::Sent(sent)) => {
                    if *sent != packet {
                        return Err(SpecViolation::CorruptedDelivery { dir, copy });
                    }
                    copies.insert(copy, CopyState::Delivered);
                }
            },
            Event::DropPkt { dir: d, copy, .. } if d == dir => {
                copies.insert(copy, CopyState::Dropped);
            }
            _ => {}
        }
    }
    Ok(())
}

/// The longest run of `send_pkt` actions on `dir` with no intervening
/// `receive_pkt` on `dir` — a finite surrogate for the PL2 liveness
/// property ("infinitely many sends force a receive").
pub fn max_send_burst_without_receive(exec: &Execution, dir: Dir) -> u64 {
    let mut best = 0u64;
    let mut run = 0u64;
    for event in exec.iter() {
        match *event {
            Event::SendPkt { dir: d, .. } if d == dir => {
                run += 1;
                best = best.max(run);
            }
            Event::ReceivePkt { dir: d, .. } if d == dir => run = 0,
            _ => {}
        }
    }
    best
}

/// An explicit DL1/DL2 correspondence: pairs of
/// `(send_msg event index, receive_msg event index)`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Correspondence {
    pairs: Vec<(usize, usize)>,
}

impl Correspondence {
    /// The matched `(send_index, receive_index)` pairs, in receive order.
    pub fn pairs(&self) -> &[(usize, usize)] {
        &self.pairs
    }
}

fn matchable(send: &Message, recv: &Message) -> bool {
    // Protocols may not inspect ghost ids, but the *checker* may: a receiver
    // that legitimately transports the id (unbounded-header protocols) must
    // deliver the right one, and a receiver that cannot (identical-message
    // model) delivers reconstructed ids assigned in delivery order, which an
    // order-preserving matching accepts. Payloads must always agree.
    send.payload() == recv.payload()
}

/// Checks DL1 alone: every `receive_msg` can be matched to a unique
/// preceding `send_msg` with equal payload.
///
/// # Errors
///
/// Returns [`SpecViolation::MessageInvented`] at the first unmatchable
/// `receive_msg`.
pub fn check_dl1(exec: &Execution) -> Result<Correspondence, SpecViolation> {
    greedy_match(exec, false)
}

/// Checks DL1 **and** DL2: an order-preserving correspondence exists.
///
/// Greedily matching each delivery to the earliest unmatched send *after the
/// previously matched send* succeeds if and only if some order-preserving
/// matching exists, so this check is exact.
///
/// # Errors
///
/// Returns [`SpecViolation::MessageInvented`] if DL1 already fails, or
/// [`SpecViolation::MessageReordered`] if only the FIFO requirement fails.
pub fn check_dl1_dl2(exec: &Execution) -> Result<Correspondence, SpecViolation> {
    greedy_match(exec, true)
}

fn greedy_match(exec: &Execution, fifo: bool) -> Result<Correspondence, SpecViolation> {
    struct PendingSend {
        event_index: usize,
        message: Message,
        matched: bool,
    }
    let mut sends: Vec<PendingSend> = Vec::new();
    let mut pairs = Vec::new();
    let mut frontier = 0usize; // index into `sends`: first candidate when fifo
    for (i, event) in exec.iter().enumerate() {
        match *event {
            Event::SendMsg(m) => sends.push(PendingSend {
                event_index: i,
                message: m,
                matched: false,
            }),
            Event::ReceiveMsg(m) => {
                let start = if fifo { frontier } else { 0 };
                let found = sends[start..]
                    .iter()
                    .position(|s| !s.matched && matchable(&s.message, &m))
                    .map(|off| start + off);
                match found {
                    Some(j) => {
                        sends[j].matched = true;
                        pairs.push((sends[j].event_index, i));
                        if fifo {
                            frontier = j + 1;
                        }
                    }
                    None => {
                        // Distinguish "no send at all" (DL1) from "a send
                        // exists but only before the FIFO frontier" (DL2).
                        let dl1_possible = fifo
                            && sends[..frontier]
                                .iter()
                                .any(|s| !s.matched && matchable(&s.message, &m));
                        return Err(if dl1_possible {
                            SpecViolation::MessageReordered { event_index: i }
                        } else {
                            SpecViolation::MessageInvented { event_index: i }
                        });
                    }
                }
            }
            _ => {}
        }
    }
    Ok(Correspondence { pairs })
}

/// Checks the finite surrogate of DL3: at quiescence every sent message has
/// been delivered (`rm(α) = sm(α)`).
///
/// # Errors
///
/// Returns [`SpecViolation::MessagesUndelivered`] with the number of
/// outstanding messages.
pub fn check_dl3_quiescent(exec: &Execution) -> Result<(), SpecViolation> {
    let c = exec.counts();
    if c.rm < c.sm {
        Err(SpecViolation::MessagesUndelivered {
            outstanding: c.sm - c.rm,
        })
    } else {
        Ok(())
    }
}

/// Classification of an execution per Definitions 3 and 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Validity {
    /// Definition 3: satisfies DL1, DL2 and (finite surrogate of) DL3.
    Valid,
    /// Definition 4: `α = α₁ α₂` with `α₁` valid and `sm(α₂) = 1` — the
    /// final message may still be in flight.
    SemiValid,
    /// Neither: carries the earliest detected violation.
    Invalid(SpecViolation),
}

impl Validity {
    /// Classifies `exec`.
    pub fn classify(exec: &Execution) -> Validity {
        let violation = match check_dl1_dl2(exec) {
            Ok(_) => match check_dl3_quiescent(exec) {
                Ok(()) => return Validity::Valid,
                Err(v) => v,
            },
            Err(v) => v,
        };
        // Semi-validity: safety holds, exactly one message outstanding, and
        // the prefix before the last send_msg is fully delivered.
        if check_dl1_dl2(exec).is_ok() {
            let c = exec.counts();
            if c.sm == c.rm + 1 {
                if let Some(i) = exec.last_send_msg_index() {
                    let prefix = exec.prefix(i);
                    let pc = prefix.counts();
                    if pc.sm == pc.rm && check_dl1_dl2(&prefix).is_ok() {
                        return Validity::SemiValid;
                    }
                }
            }
        }
        Validity::Invalid(violation)
    }

    /// True for [`Validity::Valid`].
    pub fn is_valid(self) -> bool {
        matches!(self, Validity::Valid)
    }

    /// True for [`Validity::Valid`] or [`Validity::SemiValid`].
    pub fn is_semi_valid(self) -> bool {
        matches!(self, Validity::Valid | Validity::SemiValid)
    }
}

impl fmt::Display for Validity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Validity::Valid => write!(f, "valid"),
            Validity::SemiValid => write!(f, "semi-valid"),
            Validity::Invalid(v) => write!(f, "invalid: {v}"),
        }
    }
}

/// Convenience: payload-aware equality used by the matcher, exposed for
/// tests and downstream checkers.
pub fn messages_correspond(send: &Message, recv: &Message) -> bool {
    matchable(send, recv)
}

/// Verdict of a [`ConvergenceSpec`] check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Convergence {
    /// A legal suffix exists: every event from `stabilized_at` onward
    /// satisfies DL1/DL2 (and quiescence, if required) on its own.
    Converged {
        /// Event index where the legal suffix starts (0 = the whole
        /// execution is legal, i.e. the start state was effectively clean).
        stabilized_at: usize,
    },
    /// No cut within the bound yields a legal suffix.
    Diverged {
        /// The violation at the last (deepest) cut tried — the best the
        /// execution managed.
        last_violation: SpecViolation,
    },
}

impl Convergence {
    /// True for [`Convergence::Converged`].
    pub fn is_converged(self) -> bool {
        matches!(self, Convergence::Converged { .. })
    }
}

impl fmt::Display for Convergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Convergence::Converged { stabilized_at } => {
                write!(f, "converged (legal suffix from event {stabilized_at})")
            }
            Convergence::Diverged { last_violation } => {
                write!(f, "diverged ({last_violation})")
            }
        }
    }
}

/// The self-stabilization acceptance condition: an execution is accepted if
/// it has a suffix — starting within a bounded prefix — that is legal on its
/// own, regardless of how illegal the prefix was.
///
/// This is the finite-trace form of the stabilizing data-link specification
/// of Dolev–Dubois–Potop-Butucaru–Tixeuil (arXiv:1011.3632): started from an
/// *arbitrary* automaton/channel configuration, the protocol must reach, and
/// thereafter remain in, legal behavior. In contrast the clean-start
/// checkers ([`check_dl1_dl2`], [`Validity::classify`]) reject the whole
/// execution on the first violation, wherever it occurs.
///
/// A suffix is legal when [`check_dl1_dl2`] accepts it (every delivery in
/// the suffix matches a send *in the suffix*, order-preserved) and — when
/// [`require_quiescence`](ConvergenceSpec::require_quiescence) is set —
/// every suffix send was delivered ([`check_dl3_quiescent`]).
///
/// Legality of a suffix is **not** monotone in the cut point (moving the cut
/// past a `send_msg` strands its delivery in the suffix), so the checker
/// scans candidate cuts: index 0 and the position just after every
/// `send_msg`/`receive_msg` event. DL1/DL2/DL3 only inspect message events,
/// so cutting anywhere else is equivalent to cutting at the previous
/// candidate — the scan is exact and costs O(#messages) suffix checks.
///
/// # Example
///
/// ```
/// use nonfifo_ioa::{spec::ConvergenceSpec, Event, Execution, Message};
///
/// // A corrupted start delivers a phantom, then behaves.
/// let exec: Execution = vec![
///     Event::ReceiveMsg(Message::identical(99)), // phantom from corruption
///     Event::SendMsg(Message::identical(0)),
///     Event::ReceiveMsg(Message::identical(0)),
/// ]
/// .into_iter()
/// .collect();
/// assert!(nonfifo_ioa::spec::check_dl1(&exec).is_err()); // clean-start: rejected
/// let verdict = ConvergenceSpec::new(8).check(&exec);
/// assert!(verdict.is_converged()); // stabilization: accepted (suffix from 1)
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvergenceSpec {
    max_prefix_events: usize,
    require_quiescence: bool,
}

impl ConvergenceSpec {
    /// Creates a spec that accepts executions with a legal suffix starting
    /// at or before event index `max_prefix_events`.
    pub fn new(max_prefix_events: usize) -> Self {
        ConvergenceSpec {
            max_prefix_events,
            require_quiescence: true,
        }
    }

    /// Sets whether the legal suffix must also be quiescent (every suffix
    /// `send_msg` delivered). Defaults to true: a protocol that stops
    /// delivering has not stabilized, it has died.
    #[must_use]
    pub fn require_quiescence(mut self, yes: bool) -> Self {
        self.require_quiescence = yes;
        self
    }

    /// The bound on where the legal suffix may start.
    pub fn max_prefix_events(&self) -> usize {
        self.max_prefix_events
    }

    fn suffix_legal(&self, suffix: &Execution) -> Result<(), SpecViolation> {
        check_dl1_dl2(suffix)?;
        if self.require_quiescence {
            check_dl3_quiescent(suffix)?;
        }
        Ok(())
    }

    /// Checks `exec` against the convergence condition, returning the
    /// earliest cut that yields a legal suffix.
    pub fn check(&self, exec: &Execution) -> Convergence {
        let bound = self.max_prefix_events.min(exec.len());
        let mut last = None;
        let mut try_cut = |cut: usize| -> Option<Convergence> {
            let suffix: Execution = exec.iter().skip(cut).copied().collect();
            match self.suffix_legal(&suffix) {
                Ok(()) => Some(Convergence::Converged { stabilized_at: cut }),
                Err(v) => {
                    last = Some(v);
                    None
                }
            }
        };
        if let Some(done) = try_cut(0) {
            return done;
        }
        for (i, event) in exec.iter().enumerate() {
            if i + 1 > bound {
                break;
            }
            if matches!(event, Event::SendMsg(_) | Event::ReceiveMsg(_)) {
                if let Some(done) = try_cut(i + 1) {
                    return done;
                }
            }
        }
        Convergence::Diverged {
            // At least the cut at 0 ran, so a violation was recorded.
            last_violation: last.expect("diverged with no cut tried"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{Header, Payload};

    fn send_pkt(c: u64) -> Event {
        Event::SendPkt {
            dir: Dir::Forward,
            packet: Packet::header_only(Header::new(0)),
            copy: CopyId::from_raw(c),
        }
    }

    fn recv_pkt(c: u64) -> Event {
        Event::ReceivePkt {
            dir: Dir::Forward,
            packet: Packet::header_only(Header::new(0)),
            copy: CopyId::from_raw(c),
        }
    }

    #[test]
    fn pl1_accepts_matched_traffic() {
        let exec: Execution = vec![send_pkt(1), send_pkt(2), recv_pkt(2), recv_pkt(1)]
            .into_iter()
            .collect();
        assert_eq!(check_pl1(&exec, Dir::Forward), Ok(()));
    }

    #[test]
    fn pl1_rejects_duplicate_delivery() {
        let exec: Execution = vec![send_pkt(1), recv_pkt(1), recv_pkt(1)]
            .into_iter()
            .collect();
        assert_eq!(
            check_pl1(&exec, Dir::Forward),
            Err(SpecViolation::DuplicateDelivery {
                dir: Dir::Forward,
                copy: CopyId::from_raw(1)
            })
        );
    }

    #[test]
    fn pl1_rejects_unsent_delivery() {
        let exec: Execution = vec![recv_pkt(9)].into_iter().collect();
        assert!(matches!(
            check_pl1(&exec, Dir::Forward),
            Err(SpecViolation::UnsentDelivery { .. })
        ));
    }

    #[test]
    fn pl1_rejects_delivery_after_drop() {
        let exec: Execution = vec![
            send_pkt(1),
            Event::DropPkt {
                dir: Dir::Forward,
                packet: Packet::header_only(Header::new(0)),
                copy: CopyId::from_raw(1),
            },
            recv_pkt(1),
        ]
        .into_iter()
        .collect();
        assert!(matches!(
            check_pl1(&exec, Dir::Forward),
            Err(SpecViolation::DeliveredAfterDrop { .. })
        ));
    }

    #[test]
    fn pl1_rejects_corruption() {
        let exec: Execution = vec![
            send_pkt(1),
            Event::ReceivePkt {
                dir: Dir::Forward,
                packet: Packet::header_only(Header::new(5)),
                copy: CopyId::from_raw(1),
            },
        ]
        .into_iter()
        .collect();
        assert!(matches!(
            check_pl1(&exec, Dir::Forward),
            Err(SpecViolation::CorruptedDelivery { .. })
        ));
    }

    #[test]
    fn pl1_is_per_direction() {
        let exec: Execution = vec![recv_pkt(9)].into_iter().collect();
        assert_eq!(check_pl1(&exec, Dir::Backward), Ok(()));
    }

    #[test]
    fn burst_measure() {
        let exec: Execution = vec![send_pkt(1), send_pkt(2), recv_pkt(1), send_pkt(3)]
            .into_iter()
            .collect();
        assert_eq!(max_send_burst_without_receive(&exec, Dir::Forward), 2);
        assert_eq!(max_send_burst_without_receive(&exec, Dir::Backward), 0);
    }

    #[test]
    fn dl1_accepts_identical_message_delivery() {
        let exec: Execution = vec![
            Event::SendMsg(Message::identical(0)),
            Event::SendMsg(Message::identical(1)),
            Event::ReceiveMsg(Message::identical(0)),
            Event::ReceiveMsg(Message::identical(1)),
        ]
        .into_iter()
        .collect();
        let m = check_dl1_dl2(&exec).expect("valid");
        assert_eq!(m.pairs(), &[(0, 2), (1, 3)]);
    }

    #[test]
    fn dl1_rejects_the_papers_invalid_execution() {
        // rm(α) = sm(α) + 1: the shape every theorem constructs.
        let exec: Execution = vec![
            Event::SendMsg(Message::identical(0)),
            Event::ReceiveMsg(Message::identical(0)),
            Event::ReceiveMsg(Message::identical(1)),
        ]
        .into_iter()
        .collect();
        assert_eq!(
            check_dl1(&exec),
            Err(SpecViolation::MessageInvented { event_index: 2 })
        );
    }

    #[test]
    fn dl1_rejects_delivery_before_send() {
        let exec: Execution = vec![
            Event::ReceiveMsg(Message::identical(0)),
            Event::SendMsg(Message::identical(0)),
        ]
        .into_iter()
        .collect();
        assert!(check_dl1(&exec).is_err());
    }

    #[test]
    fn dl2_rejects_payload_reordering() {
        let exec: Execution = vec![
            Event::SendMsg(Message::with_payload(0, Payload::new(10))),
            Event::SendMsg(Message::with_payload(1, Payload::new(20))),
            Event::ReceiveMsg(Message::with_payload(1, Payload::new(20))),
            Event::ReceiveMsg(Message::with_payload(0, Payload::new(10))),
        ]
        .into_iter()
        .collect();
        // DL1 alone is satisfiable…
        assert!(check_dl1(&exec).is_ok());
        // …but no order-preserving matching exists.
        assert_eq!(
            check_dl1_dl2(&exec),
            Err(SpecViolation::MessageReordered { event_index: 3 })
        );
    }

    #[test]
    fn dl3_quiescent() {
        let exec: Execution = vec![Event::SendMsg(Message::identical(0))]
            .into_iter()
            .collect();
        assert_eq!(
            check_dl3_quiescent(&exec),
            Err(SpecViolation::MessagesUndelivered { outstanding: 1 })
        );
    }

    #[test]
    fn classify_valid() {
        let exec: Execution = vec![
            Event::SendMsg(Message::identical(0)),
            Event::ReceiveMsg(Message::identical(0)),
        ]
        .into_iter()
        .collect();
        assert_eq!(Validity::classify(&exec), Validity::Valid);
        assert!(Validity::classify(&exec).is_semi_valid());
    }

    #[test]
    fn classify_semi_valid() {
        let exec: Execution = vec![
            Event::SendMsg(Message::identical(0)),
            Event::ReceiveMsg(Message::identical(0)),
            Event::SendMsg(Message::identical(1)),
            send_pkt(1),
        ]
        .into_iter()
        .collect();
        assert_eq!(Validity::classify(&exec), Validity::SemiValid);
        assert!(!Validity::classify(&exec).is_valid());
    }

    #[test]
    fn classify_two_outstanding_is_invalid() {
        let exec: Execution = vec![
            Event::SendMsg(Message::identical(0)),
            Event::SendMsg(Message::identical(1)),
        ]
        .into_iter()
        .collect();
        assert!(matches!(Validity::classify(&exec), Validity::Invalid(_)));
    }

    #[test]
    fn classify_invalid_overdelivery() {
        let exec: Execution = vec![
            Event::SendMsg(Message::identical(0)),
            Event::ReceiveMsg(Message::identical(0)),
            Event::ReceiveMsg(Message::identical(1)),
        ]
        .into_iter()
        .collect();
        assert_eq!(
            Validity::classify(&exec),
            Validity::Invalid(SpecViolation::MessageInvented { event_index: 2 })
        );
    }

    #[test]
    fn empty_execution_is_valid() {
        assert_eq!(Validity::classify(&Execution::new()), Validity::Valid);
    }

    #[test]
    fn violation_display_nonempty() {
        let v = SpecViolation::MessageInvented { event_index: 3 };
        assert!(v.to_string().contains("DL1"));
    }

    #[test]
    fn convergence_accepts_clean_execution_at_cut_zero() {
        let exec: Execution = vec![
            Event::SendMsg(Message::identical(0)),
            Event::ReceiveMsg(Message::identical(0)),
        ]
        .into_iter()
        .collect();
        assert_eq!(
            ConvergenceSpec::new(16).check(&exec),
            Convergence::Converged { stabilized_at: 0 }
        );
    }

    #[test]
    fn convergence_forgives_a_poisoned_prefix() {
        // Two phantoms from a corrupted start, then two legal rounds.
        let exec: Execution = vec![
            Event::ReceiveMsg(Message::identical(90)),
            Event::ReceiveMsg(Message::identical(91)),
            Event::SendMsg(Message::identical(0)),
            Event::ReceiveMsg(Message::identical(0)),
            Event::SendMsg(Message::identical(1)),
            Event::ReceiveMsg(Message::identical(1)),
        ]
        .into_iter()
        .collect();
        assert!(check_dl1(&exec).is_err());
        assert_eq!(
            ConvergenceSpec::new(16).check(&exec),
            Convergence::Converged { stabilized_at: 2 }
        );
    }

    #[test]
    fn convergence_rejects_violations_past_the_bound() {
        // The phantom lands at event 4; a bound of 2 cannot cut past it.
        let exec: Execution = vec![
            Event::SendMsg(Message::identical(0)),
            Event::ReceiveMsg(Message::identical(0)),
            Event::SendMsg(Message::identical(1)),
            Event::ReceiveMsg(Message::identical(1)),
            Event::ReceiveMsg(Message::identical(2)), // phantom, late
        ]
        .into_iter()
        .collect();
        let verdict = ConvergenceSpec::new(2).check(&exec);
        assert!(!verdict.is_converged(), "{verdict}");
        // A generous bound forgives it (empty-ish suffix after the phantom).
        assert!(ConvergenceSpec::new(16).check(&exec).is_converged());
    }

    #[test]
    fn convergence_quiescence_rejects_a_protocol_that_stalls() {
        // Phantom prefix, then a send that is never delivered. With the
        // bound at 1 the cut cannot amputate the send, so the only
        // DL1/DL2-legal suffix leaves it outstanding: quiescence rejects.
        let exec: Execution = vec![
            Event::ReceiveMsg(Message::identical(90)),
            Event::SendMsg(Message::identical(0)),
        ]
        .into_iter()
        .collect();
        let strict = ConvergenceSpec::new(1);
        assert!(!strict.check(&exec).is_converged());
        let lax = strict.require_quiescence(false);
        assert_eq!(
            lax.check(&exec),
            Convergence::Converged { stabilized_at: 1 }
        );
        // A bound past the send treats the lost send as part of the
        // transient (stabilizing protocols may lose O(1) messages while
        // converging) and accepts with an empty suffix.
        assert!(ConvergenceSpec::new(16).check(&exec).is_converged());
    }

    #[test]
    fn convergence_cut_is_earliest() {
        // Legal from the very first event after one phantom; later cuts
        // also work but the checker reports the earliest.
        let exec: Execution = vec![
            Event::ReceiveMsg(Message::identical(90)),
            Event::SendMsg(Message::identical(0)),
            Event::ReceiveMsg(Message::identical(0)),
            Event::SendMsg(Message::identical(1)),
            Event::ReceiveMsg(Message::identical(1)),
        ]
        .into_iter()
        .collect();
        assert_eq!(
            ConvergenceSpec::new(16).check(&exec),
            Convergence::Converged { stabilized_at: 1 }
        );
    }

    #[test]
    fn convergence_empty_execution_converges_trivially() {
        assert_eq!(
            ConvergenceSpec::new(0).check(&Execution::new()),
            Convergence::Converged { stabilized_at: 0 }
        );
    }

    #[test]
    fn convergence_display() {
        let c = Convergence::Converged { stabilized_at: 3 };
        assert!(c.to_string().contains("event 3"));
        let d = Convergence::Diverged {
            last_violation: SpecViolation::MessageInvented { event_index: 1 },
        };
        assert!(d.to_string().contains("diverged"));
    }
}
