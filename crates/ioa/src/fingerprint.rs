//! Deterministic state fingerprinting.
//!
//! Protocol implementations expose a 64-bit fingerprint of their logical
//! state. The boundness experiments of Theorem 2.1 count distinct
//! `(fingerprint(Aᵗ), fingerprint(Aʳ))` product states, and the falsifiers
//! use fingerprints to detect quiescent cycles. `std`'s default hasher is
//! randomly keyed per process, so we provide a fixed-key FNV-1a hasher that
//! is stable across runs — experiment outputs must be reproducible from a
//! seed alone.

use std::hash::{Hash, Hasher};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A 64-bit FNV-1a hasher with a fixed key.
///
/// # Example
///
/// ```
/// use nonfifo_ioa::fingerprint::{fnv64, Fnv64};
/// use std::hash::{Hash, Hasher};
///
/// let mut h = Fnv64::new();
/// 42u64.hash(&mut h);
/// let a = h.finish();
/// let b = fnv64(&42u64);
/// assert_eq!(a, b); // deterministic across processes and runs
/// ```
#[derive(Debug, Clone)]
pub struct Fnv64 {
    state: u64,
}

impl Fnv64 {
    /// Creates a hasher at the standard FNV offset basis.
    pub const fn new() -> Self {
        Fnv64 { state: FNV_OFFSET }
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

impl Hasher for Fnv64 {
    fn finish(&self) -> u64 {
        self.state
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }
}

/// Hashes any `Hash` value with the fixed-key FNV-1a hasher.
pub fn fnv64<T: Hash + ?Sized>(value: &T) -> u64 {
    let mut h = Fnv64::new();
    value.hash(&mut h);
    h.finish()
}

/// A strong 64-bit bit-mixing finalizer (the SplitMix64 output function).
///
/// FNV-1a is fast but nearly linear over inputs that share a prefix and
/// differ in trailing byte values: `fnv64(a) - fnv64(b)` is close to
/// `(a - b) * FNV_PRIME`. That is harmless when the hash is used whole, but
/// it breaks *additive* combinations — summing raw FNV hashes of the
/// sequentially-numbered packets a protocol mints makes `{p1, p4}` collide
/// with `{p2, p3}`. Any accumulator that adds per-element hashes (the
/// packet multiset's content digest) must finalize each element through
/// this mixer first, restoring full avalanche so sums collide only by
/// 64-bit coincidence.
pub fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

/// Incremental builder for protocol state fingerprints.
///
/// # Example
///
/// ```
/// use nonfifo_ioa::fingerprint::StateHash;
///
/// let fp = StateHash::new("alternating-bit")
///     .field(1u8)         // current bit
///     .field(true)        // awaiting ack
///     .finish();
/// assert_ne!(fp, StateHash::new("alternating-bit").field(0u8).field(true).finish());
/// ```
#[derive(Debug, Clone)]
pub struct StateHash {
    hasher: Fnv64,
}

impl StateHash {
    /// Starts a fingerprint, domain-separated by a protocol tag.
    pub fn new(tag: &str) -> Self {
        let mut hasher = Fnv64::new();
        tag.hash(&mut hasher);
        StateHash { hasher }
    }

    /// Mixes one state field into the fingerprint.
    #[must_use]
    pub fn field<T: Hash>(mut self, value: T) -> Self {
        value.hash(&mut self.hasher);
        self
    }

    /// Finishes and returns the 64-bit fingerprint.
    pub fn finish(self) -> u64 {
        self.hasher.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vector() {
        // FNV-1a of the empty input is the offset basis.
        assert_eq!(Fnv64::new().finish(), FNV_OFFSET);
    }

    #[test]
    fn deterministic_and_sensitive() {
        assert_eq!(fnv64("abc"), fnv64("abc"));
        assert_ne!(fnv64("abc"), fnv64("abd"));
        assert_ne!(fnv64(&1u64), fnv64(&2u64));
    }

    #[test]
    fn mix64_breaks_fnv_linearity() {
        // Raw FNV hashes of consecutive small values differ only in a few
        // xor-flipped bits, so their sums collide ({0,3} vs {1,2}: the
        // offset basis ends in 0x25, and 0x24 + 0x27 == 0x25 + 0x26);
        // mixed hashes must not.
        let h = |v: u32| fnv64(&v);
        let raw = |a: u32, b: u32| h(a).wrapping_add(h(b));
        assert_eq!(raw(0, 3), raw(1, 2), "the degeneracy mix64 exists to fix");
        let mixed = |a: u32, b: u32| mix64(h(a)).wrapping_add(mix64(h(b)));
        assert_ne!(mixed(0, 3), mixed(1, 2));
        assert_eq!(mix64(7), mix64(7));
    }

    #[test]
    fn state_hash_field_order_matters() {
        let a = StateHash::new("p").field(1u8).field(2u8).finish();
        let b = StateHash::new("p").field(2u8).field(1u8).finish();
        assert_ne!(a, b);
    }

    #[test]
    fn state_hash_tag_separates_domains() {
        let a = StateHash::new("p").field(1u8).finish();
        let b = StateHash::new("q").field(1u8).finish();
        assert_ne!(a, b);
    }
}
