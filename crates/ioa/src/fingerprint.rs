//! Deterministic state fingerprinting.
//!
//! Protocol implementations expose a 64-bit fingerprint of their logical
//! state. The boundness experiments of Theorem 2.1 count distinct
//! `(fingerprint(Aᵗ), fingerprint(Aʳ))` product states, and the falsifiers
//! use fingerprints to detect quiescent cycles. `std`'s default hasher is
//! randomly keyed per process, so we provide a fixed-key FNV-1a hasher that
//! is stable across runs — experiment outputs must be reproducible from a
//! seed alone.

use std::hash::{Hash, Hasher};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A 64-bit FNV-1a hasher with a fixed key.
///
/// # Example
///
/// ```
/// use nonfifo_ioa::fingerprint::{fnv64, Fnv64};
/// use std::hash::{Hash, Hasher};
///
/// let mut h = Fnv64::new();
/// 42u64.hash(&mut h);
/// let a = h.finish();
/// let b = fnv64(&42u64);
/// assert_eq!(a, b); // deterministic across processes and runs
/// ```
#[derive(Debug, Clone)]
pub struct Fnv64 {
    state: u64,
}

impl Fnv64 {
    /// Creates a hasher at the standard FNV offset basis.
    pub const fn new() -> Self {
        Fnv64 { state: FNV_OFFSET }
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

impl Hasher for Fnv64 {
    fn finish(&self) -> u64 {
        self.state
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }
}

/// Hashes any `Hash` value with the fixed-key FNV-1a hasher.
pub fn fnv64<T: Hash + ?Sized>(value: &T) -> u64 {
    let mut h = Fnv64::new();
    value.hash(&mut h);
    h.finish()
}

/// Incremental builder for protocol state fingerprints.
///
/// # Example
///
/// ```
/// use nonfifo_ioa::fingerprint::StateHash;
///
/// let fp = StateHash::new("alternating-bit")
///     .field(1u8)         // current bit
///     .field(true)        // awaiting ack
///     .finish();
/// assert_ne!(fp, StateHash::new("alternating-bit").field(0u8).field(true).finish());
/// ```
#[derive(Debug, Clone)]
pub struct StateHash {
    hasher: Fnv64,
}

impl StateHash {
    /// Starts a fingerprint, domain-separated by a protocol tag.
    pub fn new(tag: &str) -> Self {
        let mut hasher = Fnv64::new();
        tag.hash(&mut hasher);
        StateHash { hasher }
    }

    /// Mixes one state field into the fingerprint.
    #[must_use]
    pub fn field<T: Hash>(mut self, value: T) -> Self {
        value.hash(&mut self.hasher);
        self
    }

    /// Finishes and returns the 64-bit fingerprint.
    pub fn finish(self) -> u64 {
        self.hasher.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vector() {
        // FNV-1a of the empty input is the offset basis.
        assert_eq!(Fnv64::new().finish(), FNV_OFFSET);
    }

    #[test]
    fn deterministic_and_sensitive() {
        assert_eq!(fnv64("abc"), fnv64("abc"));
        assert_ne!(fnv64("abc"), fnv64("abd"));
        assert_ne!(fnv64(&1u64), fnv64(&2u64));
    }

    #[test]
    fn state_hash_field_order_matters() {
        let a = StateHash::new("p").field(1u8).field(2u8).finish();
        let b = StateHash::new("p").field(2u8).field(1u8).finish();
        assert_ne!(a, b);
    }

    #[test]
    fn state_hash_tag_separates_domains() {
        let a = StateHash::new("p").field(1u8).finish();
        let b = StateHash::new("q").field(1u8).finish();
        assert_ne!(a, b);
    }
}
