//! I/O-automaton model substrate for the `nonfifo` reproduction of
//! *The Intractability of Bounded Protocols for Non-FIFO Channels*
//! (Mansour & Schieber, PODC 1989).
//!
//! The paper models the data-link layer as two I/O automata, `Aᵗ` at the
//! transmitting station and `Aʳ` at the receiving station, communicating over
//! two unidirectional physical channels. This crate provides the vocabulary
//! that everything else in the workspace is written in:
//!
//! - [`Packet`], [`Header`], [`CopyId`], [`Dir`] — the physical-layer
//!   alphabet. Because the lower bounds assume all *messages* are identical,
//!   the number of distinct packets **is** the number of headers
//!   (paper §2.3, "Headers").
//! - [`Message`], [`MsgId`] — the data-link alphabet, with a ghost identifier
//!   used only by the specification checkers, never by protocols.
//! - [`Event`], [`Execution`] — recorded executions and the counters of the
//!   paper's Definition 2 (`sm`, `rm`, `spᵗ→ʳ`, `rpᵗ→ʳ`, `spʳ→ᵗ`, `rpʳ→ᵗ`).
//! - [`spec`] — checkers for the physical-layer properties (PL1, finite PL2
//!   surrogates) and the data-link properties (DL1 safety, DL2 FIFO, DL3
//!   finite-horizon liveness), plus validity and semi-validity
//!   (Definitions 3–4).
//! - [`SpecMonitor`] — an incremental checker suitable for long runs.
//! - [`fingerprint`] — a deterministic hasher for protocol state
//!   fingerprints (used by the boundness experiments of Theorem 2.1).
//!
//! # Example
//!
//! Construct the invalid execution at the heart of every proof in the paper —
//! one more `receive_msg` than `send_msg` — and watch the checker reject it:
//!
//! ```
//! use nonfifo_ioa::{spec, Event, Execution, Message};
//!
//! let mut exec = Execution::new();
//! exec.push(Event::SendMsg(Message::identical(0)));
//! exec.push(Event::ReceiveMsg(Message::identical(0)));
//! exec.push(Event::ReceiveMsg(Message::identical(1)));
//! assert!(spec::check_dl1(&exec).is_err());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diagram;
mod event;
mod execution;
pub mod fingerprint;
mod message;
mod monitor;
mod packet;
pub mod spec;
pub mod text;
pub mod view;

pub use event::Event;
pub use execution::{Counts, Execution};
pub use message::{Message, MsgId};
pub use monitor::SpecMonitor;
pub use packet::{CopyId, Dir, Header, Packet, Payload};
pub use spec::{Convergence, ConvergenceSpec, SpecViolation, Validity};
