//! Growth-rate fitting by least squares.
//!
//! Experiment E5 measures total packets sent as a function of the number
//! of messages `n` and must decide whether the curve is exponential (and
//! with what base) or linear. We fit `log y = a + n·log b` by ordinary
//! least squares; `b` is the recovered growth base, and the residual tells
//! linear from exponential apart.

/// A least-squares line fit `y = intercept + slope·x`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GrowthFit {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination R².
    pub r_squared: f64,
}

impl GrowthFit {
    /// For a fit of `log y` against `n`: the growth base `b = e^slope`.
    pub fn base(&self) -> f64 {
        self.slope.exp()
    }
}

/// Ordinary least-squares fit of `y` against `x`.
///
/// # Panics
///
/// Panics if fewer than two points are supplied or all `x` are equal.
///
/// # Example
///
/// ```
/// use nonfifo_analysis::fit_linear;
/// let xs = [0.0, 1.0, 2.0, 3.0];
/// let ys = [1.0, 3.0, 5.0, 7.0];
/// let fit = fit_linear(&xs, &ys);
/// assert!((fit.slope - 2.0).abs() < 1e-9);
/// assert!((fit.intercept - 1.0).abs() < 1e-9);
/// ```
pub fn fit_linear(xs: &[f64], ys: &[f64]) -> GrowthFit {
    assert_eq!(xs.len(), ys.len(), "xs and ys must pair up");
    assert!(xs.len() >= 2, "need at least two points");
    let n = xs.len() as f64;
    let mean_x = xs.iter().sum::<f64>() / n;
    let mean_y = ys.iter().sum::<f64>() / n;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    let mut syy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        sxx += (x - mean_x) * (x - mean_x);
        sxy += (x - mean_x) * (y - mean_y);
        syy += (y - mean_y) * (y - mean_y);
    }
    assert!(sxx > 0.0, "x values must not all be equal");
    let slope = sxy / sxx;
    let intercept = mean_y - slope * mean_x;
    let r_squared = if syy == 0.0 {
        1.0
    } else {
        (sxy * sxy) / (sxx * syy)
    };
    GrowthFit {
        slope,
        intercept,
        r_squared,
    }
}

/// Fits an exponential `y = c·bⁿ` through `(n, y)` points by regressing
/// `ln y` on `n`. Points with `y ≤ 0` are rejected.
///
/// # Panics
///
/// Panics if fewer than two points are supplied or any `y ≤ 0`.
///
/// # Example
///
/// ```
/// use nonfifo_analysis::fit_exponential;
/// let ns = [1.0, 2.0, 3.0, 4.0, 5.0];
/// let ys: Vec<f64> = ns.iter().map(|n| 3.0 * 1.5f64.powf(*n)).collect();
/// let fit = fit_exponential(&ns, &ys);
/// assert!((fit.base() - 1.5).abs() < 1e-9);
/// ```
pub fn fit_exponential(ns: &[f64], ys: &[f64]) -> GrowthFit {
    assert!(
        ys.iter().all(|&y| y > 0.0),
        "exponential fit needs positive y values"
    );
    let logs: Vec<f64> = ys.iter().map(|&y| y.ln()).collect();
    fit_linear(ns, &logs)
}

/// Fits a power law `y = c·n^d` through `(n, y)` points by regressing
/// `ln y` on `ln n`; the returned slope is the degree `d`.
///
/// # Panics
///
/// Panics if fewer than two points are supplied or any `n ≤ 0` / `y ≤ 0`.
///
/// # Example
///
/// ```
/// use nonfifo_analysis::growth::fit_power;
/// let ns = [1.0, 2.0, 4.0, 8.0];
/// let ys: Vec<f64> = ns.iter().map(|n| 5.0 * n * n).collect();
/// let fit = fit_power(&ns, &ys);
/// assert!((fit.slope - 2.0).abs() < 1e-9); // degree 2
/// ```
pub fn fit_power(ns: &[f64], ys: &[f64]) -> GrowthFit {
    assert!(
        ns.iter().all(|&n| n > 0.0) && ys.iter().all(|&y| y > 0.0),
        "power fit needs positive coordinates"
    );
    let log_ns: Vec<f64> = ns.iter().map(|&n| n.ln()).collect();
    let log_ys: Vec<f64> = ys.iter().map(|&y| y.ln()).collect();
    fit_linear(&log_ns, &log_ys)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_planted_exponent() {
        let ns: Vec<f64> = (1..=12).map(|n| n as f64).collect();
        let ys: Vec<f64> = ns.iter().map(|n| 2.0 * 1.3f64.powf(*n)).collect();
        let fit = fit_exponential(&ns, &ys);
        assert!((fit.base() - 1.3).abs() < 1e-9, "base {}", fit.base());
        assert!(fit.r_squared > 0.999999);
    }

    #[test]
    fn linear_data_fits_base_near_one() {
        let ns: Vec<f64> = (1..=40).map(|n| n as f64).collect();
        let ys: Vec<f64> = ns.iter().map(|n| 10.0 * n).collect();
        let fit = fit_exponential(&ns, &ys);
        // log(10n) is concave and slow: the fitted base hugs 1.
        assert!(fit.base() < 1.15, "base {}", fit.base());
    }

    #[test]
    fn exponential_beats_linear_discriminably() {
        let ns: Vec<f64> = (1..=16).map(|n| n as f64).collect();
        let expo: Vec<f64> = ns.iter().map(|n| 1.4f64.powf(*n)).collect();
        let line: Vec<f64> = ns.iter().map(|n| 5.0 * n).collect();
        let b_expo = fit_exponential(&ns, &expo).base();
        let b_line = fit_exponential(&ns, &line).base();
        assert!(b_expo > 1.35 && b_line < 1.2);
    }

    #[test]
    fn power_fit_recovers_degree() {
        let ns: Vec<f64> = (1..=30).map(|n| n as f64).collect();
        let quad: Vec<f64> = ns.iter().map(|n| 3.0 * n.powi(2)).collect();
        let cube: Vec<f64> = ns.iter().map(|n| 0.5 * n.powi(3)).collect();
        assert!((fit_power(&ns, &quad).slope - 2.0).abs() < 1e-9);
        assert!((fit_power(&ns, &cube).slope - 3.0).abs() < 1e-9);
    }

    #[test]
    fn power_fit_separates_regimes() {
        // Linear, quadratic, exponential data get degrees ~1, ~2, and
        // super-polynomial (large, unstable) respectively.
        let ns: Vec<f64> = (2..=20).map(|n| n as f64).collect();
        let lin: Vec<f64> = ns.iter().map(|n| 7.0 * n).collect();
        let expo: Vec<f64> = ns.iter().map(|n| 1.5f64.powf(*n)).collect();
        assert!((fit_power(&ns, &lin).slope - 1.0).abs() < 1e-9);
        assert!(fit_power(&ns, &expo).slope > 3.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn power_fit_rejects_nonpositive() {
        let _ = fit_power(&[0.0, 1.0], &[1.0, 2.0]);
    }

    #[test]
    fn r_squared_penalises_noise() {
        let xs = [0.0, 1.0, 2.0, 3.0];
        let clean = [0.0, 1.0, 2.0, 3.0];
        let noisy = [0.0, 2.0, 1.0, 3.0];
        assert!(fit_linear(&xs, &clean).r_squared > fit_linear(&xs, &noisy).r_squared);
    }

    #[test]
    #[should_panic(expected = "two points")]
    fn rejects_single_point() {
        let _ = fit_linear(&[1.0], &[1.0]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_nonpositive_y() {
        let _ = fit_exponential(&[1.0, 2.0], &[1.0, 0.0]);
    }
}
