//! The Hoeffding tail bound (the paper's Theorem 5.4) and exact binomial
//! tails.

/// The Hoeffding bound on the lower tail of a sum of `n` independent
/// Bernoulli(`q`) variables: for `alpha < q`,
/// `Pr[ΣXᵢ ≤ alpha·n] ≤ e^{−2n(alpha−q)²}` (\[Hoe63\], quoted as
/// Theorem 5.4 in the paper).
///
/// For `alpha ≥ q` the bound is vacuous and this function returns 1.
///
/// # Panics
///
/// Panics if `q` or `alpha` is not in `[0, 1]`.
///
/// # Example
///
/// ```
/// use nonfifo_analysis::hoeffding_lower_tail;
/// let b = hoeffding_lower_tail(100, 0.5, 0.25);
/// assert!(b < 0.01);
/// ```
pub fn hoeffding_lower_tail(n: u64, q: f64, alpha: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "q must be a probability");
    assert!((0.0..=1.0).contains(&alpha), "alpha must be a probability");
    if alpha >= q {
        return 1.0;
    }
    let n = n as f64;
    (-2.0 * n * (alpha - q) * (alpha - q)).exp()
}

/// The exact lower tail `Pr[Binomial(n, q) ≤ k]`, computed with a
/// numerically stable recurrence in log space.
///
/// # Panics
///
/// Panics if `q` is not in `[0, 1]`.
///
/// # Example
///
/// ```
/// use nonfifo_analysis::binomial_lower_tail;
/// // A fair coin: Pr[X ≤ n/2] is a bit over 1/2.
/// let p = binomial_lower_tail(100, 0.5, 50);
/// assert!(p > 0.5 && p < 0.6);
/// ```
pub fn binomial_lower_tail(n: u64, q: f64, k: u64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "q must be a probability");
    if k >= n {
        return 1.0;
    }
    if q == 0.0 {
        return 1.0;
    }
    if q == 1.0 {
        return if k >= n { 1.0 } else { 0.0 };
    }
    // log pmf(0) = n·ln(1−q); pmf(i+1)/pmf(i) = (n−i)/(i+1) · q/(1−q).
    let ratio = q / (1.0 - q);
    let mut log_pmf = n as f64 * (1.0 - q).ln();
    let mut total = log_pmf.exp();
    for i in 0..k {
        log_pmf += ((n - i) as f64 / (i + 1) as f64).ln() + ratio.ln();
        total += log_pmf.exp();
    }
    total.min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hoeffding_dominates_exact_tail() {
        // The whole point of the bound: it upper-bounds the exact tail for
        // every (n, q, alpha) with alpha < q.
        for &n in &[10u64, 50, 200, 1000] {
            for &q in &[0.2, 0.4, 0.6] {
                for &alpha in &[0.05, 0.1, 0.15] {
                    if alpha >= q {
                        continue;
                    }
                    let k = (alpha * n as f64).floor() as u64;
                    let exact = binomial_lower_tail(n, q, k);
                    let bound = hoeffding_lower_tail(n, q, alpha);
                    assert!(
                        exact <= bound + 1e-12,
                        "n={n} q={q} alpha={alpha}: exact {exact} > bound {bound}"
                    );
                }
            }
        }
    }

    #[test]
    fn bound_decays_exponentially_in_n() {
        let b10 = hoeffding_lower_tail(10, 0.5, 0.25);
        let b100 = hoeffding_lower_tail(100, 0.5, 0.25);
        let b1000 = hoeffding_lower_tail(1000, 0.5, 0.25);
        assert!(b100 < b10 && b1000 < b100);
        // e^{-2·1000·0.0625} is astronomically small.
        assert!(b1000 < 1e-50);
    }

    #[test]
    fn vacuous_region_returns_one() {
        assert_eq!(hoeffding_lower_tail(100, 0.3, 0.3), 1.0);
        assert_eq!(hoeffding_lower_tail(100, 0.3, 0.9), 1.0);
    }

    #[test]
    fn binomial_edge_cases() {
        assert_eq!(binomial_lower_tail(10, 0.5, 10), 1.0);
        assert_eq!(binomial_lower_tail(10, 0.0, 0), 1.0);
        assert_eq!(binomial_lower_tail(10, 1.0, 5), 0.0);
        assert_eq!(binomial_lower_tail(10, 1.0, 10), 1.0);
    }

    #[test]
    fn binomial_matches_hand_computation() {
        // Binomial(4, 0.5): Pr[X ≤ 1] = (1 + 4) / 16 = 0.3125.
        let p = binomial_lower_tail(4, 0.5, 1);
        assert!((p - 0.3125).abs() < 1e-12, "{p}");
    }

    #[test]
    fn binomial_tail_is_monotone_in_k() {
        let mut prev = 0.0;
        for k in 0..=20 {
            let p = binomial_lower_tail(20, 0.35, k);
            assert!(p >= prev - 1e-12);
            prev = p;
        }
        assert!((prev - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn rejects_bad_q() {
        let _ = hoeffding_lower_tail(10, 1.5, 0.1);
    }
}
