//! Statistics substrate for the `nonfifo` reproduction of Mansour &
//! Schieber (PODC 1989).
//!
//! Section 5 of the paper rests on the Hoeffding bound (its Theorem 5.4)
//! and on reasoning about exponential growth rates. This crate provides
//! those tools, plus the summary statistics the experiment harness uses:
//!
//! - [`hoeffding`] — the tail bound `Pr[ΣXᵢ ≤ αn] ≤ e^{−2n(α−q)²}` and
//!   exact binomial tails to compare it against (experiment E7).
//! - [`growth`] — log-linear regression for growth-rate fitting: given a
//!   packets-vs-n curve, recover the base `b` of `b^n` (experiment E5
//!   checks `b ≥ 1 + q − εₙ`).
//! - [`summary`] — Welford mean/variance, quantiles, and empirical CDFs
//!   for Monte-Carlo experiments (E6).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod growth;
pub mod hoeffding;
pub mod summary;

pub use growth::{fit_exponential, fit_linear, fit_power, GrowthFit};
pub use hoeffding::{binomial_lower_tail, hoeffding_lower_tail};
pub use summary::{empirical_cdf_at, quantile, Summary};
