//! Summary statistics for Monte-Carlo experiments.

/// Streaming mean/variance via Welford's algorithm, plus min/max.
///
/// # Example
///
/// ```
/// use nonfifo_analysis::Summary;
/// let s: Summary = [1.0, 2.0, 3.0, 4.0].into_iter().collect();
/// assert_eq!(s.mean(), 2.5);
/// assert_eq!(s.count(), 4);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary::default()
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        if self.count == 0 {
            self.min = x;
            self.max = x;
        } else {
            self.min = self.min.min(x);
            self.max = self.max.max(x);
        }
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 for an empty summary).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean (0 with fewer than two observations).
    pub fn stderr(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.stddev() / (self.count as f64).sqrt()
        }
    }

    /// A normal-approximation 95% confidence interval for the mean:
    /// `(mean − 1.96·se, mean + 1.96·se)`.
    pub fn mean_ci95(&self) -> (f64, f64) {
        let half = 1.96 * self.stderr();
        (self.mean - half, self.mean + half)
    }

    /// Smallest observation (0 for an empty summary).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation (0 for an empty summary).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Summary::new();
        for x in iter {
            s.push(x);
        }
        s
    }
}

impl Extend<f64> for Summary {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }
}

/// The `p`-quantile (0 ≤ p ≤ 1) of a sample, by the nearest-rank method.
///
/// # Panics
///
/// Panics if the sample is empty or `p` is outside `[0, 1]`.
///
/// # Example
///
/// ```
/// use nonfifo_analysis::quantile;
/// let xs = [5.0, 1.0, 3.0, 2.0, 4.0];
/// assert_eq!(quantile(&xs, 0.5), 3.0);
/// ```
pub fn quantile(sample: &[f64], p: f64) -> f64 {
    assert!(!sample.is_empty(), "quantile of an empty sample");
    assert!((0.0..=1.0).contains(&p), "p must be in [0, 1]");
    let mut sorted = sample.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
    let rank = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// The empirical CDF of `sample` evaluated at `x`: the fraction of
/// observations `≤ x`.
///
/// # Example
///
/// ```
/// use nonfifo_analysis::empirical_cdf_at;
/// let xs = [1.0, 2.0, 3.0, 4.0];
/// assert_eq!(empirical_cdf_at(&xs, 2.5), 0.5);
/// ```
pub fn empirical_cdf_at(sample: &[f64], x: f64) -> f64 {
    if sample.is_empty() {
        return 0.0;
    }
    sample.iter().filter(|&&v| v <= x).count() as f64 / sample.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_naive() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let s: Summary = xs.into_iter().collect();
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Naive unbiased variance: Σ(x−5)²/7 = 32/7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn empty_and_singleton() {
        let e = Summary::new();
        assert_eq!(e.count(), 0);
        assert_eq!(e.mean(), 0.0);
        assert_eq!(e.variance(), 0.0);
        let s: Summary = [3.0].into_iter().collect();
        assert_eq!(s.mean(), 3.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), 3.0);
    }

    #[test]
    fn ci_brackets_the_mean_and_shrinks_with_n() {
        let small: Summary = (0..10).map(|i| i as f64).collect();
        let large: Summary = (0..1000).map(|i| (i % 10) as f64).collect();
        let (lo_s, hi_s) = small.mean_ci95();
        let (lo_l, hi_l) = large.mean_ci95();
        assert!(lo_s <= small.mean() && small.mean() <= hi_s);
        assert!(hi_l - lo_l < hi_s - lo_s, "more samples, tighter CI");
        // Degenerate cases are quiet.
        assert_eq!(Summary::new().mean_ci95(), (0.0, 0.0));
    }

    #[test]
    fn extend_accumulates() {
        let mut s = Summary::new();
        s.extend([1.0, 2.0]);
        s.extend([3.0]);
        assert_eq!(s.count(), 3);
        assert_eq!(s.mean(), 2.0);
    }

    #[test]
    fn quantile_nearest_rank() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 0.25), 1.0);
        assert_eq!(quantile(&xs, 0.26), 2.0);
        assert_eq!(quantile(&xs, 1.0), 4.0);
    }

    #[test]
    fn cdf_steps() {
        let xs = [1.0, 1.0, 2.0];
        assert_eq!(empirical_cdf_at(&xs, 0.5), 0.0);
        assert!((empirical_cdf_at(&xs, 1.0) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(empirical_cdf_at(&xs, 5.0), 1.0);
        assert_eq!(empirical_cdf_at(&[], 1.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn quantile_rejects_empty() {
        let _ = quantile(&[], 0.5);
    }
}
