//! The campaign service: a long-running daemon that accepts plan
//! documents, shards each plan's expansion across worker *processes*, and
//! streams results as they land — the `nonfifo serve` back end.
//!
//! ## Architecture
//!
//! The daemon is a thread-per-connection HTTP/1.1 server hand-rolled on
//! [`std::net`] (this workspace links no external crates). A submitted
//! campaign drives the same three public stages as the batch CLI:
//! [`PlanExpansion`] expands and validates the plan, each
//! [`ShardSpec`] executes its round-robin slice — in a spawned
//! `nonfifo worker` process fed one [`WireMsg::Shard`] line on stdin and
//! answering one [`WireMsg::Run`] line per completed run on stdout — and
//! [`merge_reports`] reassembles the records fingerprint-keyed in input
//! order. Workers that die mid-shard leave detectable gaps
//! ([`ShardReport::missing_from`]), which the daemon re-executes
//! in-process before merging, so a killed worker costs wall-clock time
//! but never changes a byte of the final report.
//!
//! ## Determinism
//!
//! Every run is a deterministic function of its spec, the merge is keyed
//! by expansion index and spec fingerprint, and the aggregate snapshot
//! merges per-run metrics in input order — so the final
//! [`WireMsg::Report`] is byte-identical to single-process batch output
//! at any worker count, any completion interleaving, and any mix of
//! cached and fresh records. CI pins this for 1, 2, and 4 workers.
//!
//! ## Shared cache
//!
//! One [`SharedCache`] (an `RwLock`ed [`CampaignCache`]) serves every
//! connection: concurrent campaigns replay hits under the read lock, and
//! each campaign's fresh records land under one write-lock acquisition.
//! A warm replay differs from the cold run only in the
//! `campaign.cache_hits` counter.

use crate::cache::SharedCache;
use crate::plan::CampaignPlan;
use crate::runner::RunRecord;
use crate::shard::{merge_reports, PlanExpansion, ShardRecord, ShardReport, ShardSpec};
use crate::wire::WireMsg;
use nonfifo_core::NonFifoError;
use nonfifo_telemetry::{MetricsSnapshot, Registry, SCHEMA_VERSION};
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// How a [`CampaignService`] runs campaigns.
#[derive(Debug, Clone, Default)]
pub struct ServiceConfig {
    /// Default worker count for submissions that don't request one
    /// (`Submit { workers: 0 }`); `0` means one per available core.
    pub workers: usize,
    /// Command line (program plus arguments) spawned per shard, fed a
    /// `Shard` line on stdin and read for `Run` lines on stdout. Empty
    /// means execute shards on in-process threads instead — same staging,
    /// no processes; used by tests and by `--in-process` deployments.
    pub worker_command: Vec<String>,
    /// Cache file shared by every campaign; loaded at startup (missing
    /// file = empty cache) and rewritten after each campaign that ran
    /// fresh runs.
    pub cache_path: Option<String>,
}

type Sink<'a> = Mutex<&'a mut (dyn FnMut(&WireMsg) + Send)>;

fn emit(sink: &Sink<'_>, msg: &WireMsg) {
    (*sink.lock().expect("delta sink poisoned"))(msg);
}

/// The long-running campaign daemon: shared cache, service telemetry, and
/// the HTTP front end. Cheap to clone (connection handlers share state
/// through `Arc`s).
#[derive(Debug, Clone)]
pub struct CampaignService {
    cfg: ServiceConfig,
    cache: SharedCache,
    registry: Arc<Registry>,
    shutdown: Arc<AtomicBool>,
}

impl CampaignService {
    /// A service with the given configuration, loading the shared cache
    /// from `cache_path` if configured.
    ///
    /// # Errors
    ///
    /// Fails if the cache file exists but cannot be read or parsed.
    pub fn new(cfg: ServiceConfig) -> Result<CampaignService, NonFifoError> {
        let cache = match &cfg.cache_path {
            Some(path) => SharedCache::load(path)?,
            None => SharedCache::new(),
        };
        Ok(CampaignService {
            cfg,
            cache,
            registry: Arc::new(Registry::new()),
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The service-level telemetry registry (`service.*` metrics plus
    /// `campaign.runs_per_sec`), exported by `GET /metrics`.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// The cache shared by every campaign this service runs.
    pub fn cache(&self) -> &SharedCache {
        &self.cache
    }

    /// Asks the serve loop to exit after the connection in flight.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// True once shutdown has been requested.
    pub fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    fn effective_workers(&self, requested: usize) -> usize {
        let configured = if requested > 0 {
            requested
        } else {
            self.cfg.workers
        };
        if configured > 0 {
            configured
        } else {
            std::thread::available_parallelism().map_or(1, usize::from)
        }
    }

    /// Runs one submitted campaign: expand, shard across workers, merge.
    /// Streams a [`WireMsg::Run`] per completed run (as it lands, any
    /// order) and a [`WireMsg::Metrics`] delta per finished shard to
    /// `sink`, then returns the final [`WireMsg::Report`] — byte-identical
    /// to batch output for the same plan. Fresh results are published to
    /// the shared cache (and the cache file, if configured) before the
    /// report is returned.
    ///
    /// # Errors
    ///
    /// Fails on plan parse/validation errors, on a merge that cannot be
    /// completed, and on cache-file write failures.
    pub fn run_campaign(
        &self,
        plan_text: &str,
        requested_workers: usize,
        sink: &mut (dyn FnMut(&WireMsg) + Send),
    ) -> Result<WireMsg, NonFifoError> {
        let started = Instant::now();
        let plan = CampaignPlan::parse(plan_text)?;
        let expansion = PlanExpansion::of_plan(&plan)?;

        let mut cached: Vec<(usize, RunRecord)> = Vec::new();
        let mut misses: Vec<usize> = Vec::new();
        for (i, spec) in expansion.runs().iter().enumerate() {
            match self.cache.lookup(spec) {
                Some(hit) => cached.push((i, hit)),
                None => misses.push(i),
            }
        }

        let workers = self.effective_workers(requested_workers);
        // Weight-balanced sharding: a plan mixing an exponential-cost cell
        // (outnumber/afek at high traffic) with cheap seeds would leave
        // round-robin workers idle behind one hot shard. Placement never
        // reaches the report — the merge is fingerprint-keyed and
        // index-addressed — so any partition is byte-identical.
        let shards = expansion.shards_weighted(&misses, workers);
        self.registry
            .gauge("service.active_workers")
            .set(shards.len() as u64);
        self.registry
            .gauge("service.shard_imbalance")
            .set(expansion.shard_imbalance_pct(&shards));

        let sink: Sink<'_> = Mutex::new(sink);
        let raw_parts: Vec<(ShardSpec, Vec<ShardRecord>)> = std::thread::scope(|scope| {
            let handles: Vec<_> = shards
                .iter()
                .map(|shard| {
                    let expansion = &expansion;
                    let sink = &sink;
                    scope.spawn(move || {
                        let records = if self.cfg.worker_command.is_empty() {
                            shard
                                .execute(expansion, |r| emit(sink, &WireMsg::run_delta(r)))
                                .records
                        } else {
                            self.drive_worker(plan_text, shard, sink)
                        };
                        (shard.clone(), records)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard driver panicked"))
                .collect()
        });

        // Fill any gaps a dead or drifting worker left, then emit each
        // shard's metrics delta (per-run snapshots merged in index order).
        let mut parts = Vec::with_capacity(raw_parts.len());
        let mut retried = 0usize;
        for (shard, records) in raw_parts {
            let mut part = ShardReport {
                shard: shard.shard,
                records,
            };
            let missing = part.missing_from(&shard.indices);
            if !missing.is_empty() {
                retried += missing.len();
                let refill = ShardSpec {
                    shard: shard.shard,
                    of: shard.of,
                    indices: missing,
                }
                .execute(&expansion, |r| emit(&sink, &WireMsg::run_delta(r)));
                part.records.extend(refill.records);
                part.records.sort_unstable_by_key(|r| r.index);
            }
            let mut delta = MetricsSnapshot {
                schema_version: SCHEMA_VERSION,
                ..MetricsSnapshot::default()
            };
            for record in &part.records {
                delta.merge_from(&record.run.metrics);
            }
            emit(
                &sink,
                &WireMsg::Metrics {
                    shard: shard.shard as u64,
                    snapshot: delta,
                },
            );
            parts.push(part);
        }

        let cache_hits = cached.len();
        let fresh = expansion.len() - cache_hits;
        let report = merge_reports(&expansion, cached, parts)?;
        self.cache.insert_all(
            report
                .records
                .iter()
                .filter(|r| !r.cached)
                .map(|r| (&r.spec, r)),
        );
        if let Some(path) = &self.cfg.cache_path {
            if fresh > 0 {
                self.cache.save(path)?;
            }
        }

        self.registry.counter("service.campaigns_total").inc();
        self.registry
            .counter("service.runs_total")
            .add(report.records.len() as u64);
        self.registry
            .counter("service.cache_hits")
            .add(cache_hits as u64);
        self.registry
            .counter("service.retried_runs")
            .add(retried as u64);
        let secs = started.elapsed().as_secs_f64();
        if fresh > 0 && secs > 0.0 {
            self.registry
                .set_value("campaign.runs_per_sec", fresh as f64 / secs);
        }
        self.registry.gauge("service.active_workers").set(0);

        Ok(WireMsg::Report {
            render: report.render(),
            cache_hits: cache_hits as u64,
            aggregate: report.aggregate_metrics(),
        })
    }

    /// Spawns one worker process, hands it its shard, and collects the
    /// `Run` lines it streams back (forwarding each to `sink`). Every
    /// failure mode — spawn error, worker death, garbage on the pipe —
    /// degrades to returned records stopping early; the caller detects
    /// the gap and re-executes the missing runs in-process.
    fn drive_worker(&self, plan: &str, shard: &ShardSpec, sink: &Sink<'_>) -> Vec<ShardRecord> {
        let cmd = &self.cfg.worker_command;
        let mut child: Child = match Command::new(&cmd[0])
            .args(&cmd[1..])
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
        {
            Ok(child) => child,
            Err(_) => return Vec::new(),
        };
        if let Some(mut stdin) = child.stdin.take() {
            // Dropping stdin closes the pipe: the worker sees exactly one
            // assignment line then EOF.
            let _ = stdin.write_all(WireMsg::shard_assignment(plan, shard).to_line().as_bytes());
        }
        let mut records = Vec::new();
        if let Some(stdout) = child.stdout.take() {
            for line in BufReader::new(stdout).lines() {
                let Ok(line) = line else { break };
                if line.trim().is_empty() {
                    continue;
                }
                let Ok(msg) = WireMsg::parse_line(&line) else {
                    break;
                };
                if let Some(record) = msg.clone().into_shard_record() {
                    emit(sink, &msg);
                    records.push(record);
                } else {
                    // An Error (or any non-Run) line means the worker gave
                    // up on the rest of its shard.
                    break;
                }
            }
        }
        let _ = child.wait();
        records
    }

    /// Serves HTTP on `listener` until [`request_shutdown`] (or a
    /// `POST /shutdown` request) fires. Connections are handled on their
    /// own threads; campaigns submitted concurrently share the cache.
    ///
    /// Routes: `GET /healthz`, `GET /metrics` (service registry snapshot),
    /// `POST /campaign` (plan text or a `submit` wire message; answers a
    /// newline-delimited [`WireMsg`] stream), `POST /shutdown`.
    ///
    /// # Errors
    ///
    /// Fails if the listener's local address cannot be read.
    pub fn serve(&self, listener: TcpListener) -> Result<(), NonFifoError> {
        let addr = listener.local_addr().map_err(|e| NonFifoError::Io {
            path: "listener".to_string(),
            message: e.to_string(),
        })?;
        loop {
            if self.is_shutdown() {
                return Ok(());
            }
            let Ok((stream, _)) = listener.accept() else {
                continue;
            };
            if self.is_shutdown() {
                return Ok(());
            }
            let service = self.clone();
            std::thread::spawn(move || service.handle_conn(stream, addr));
        }
    }

    fn handle_conn(&self, stream: TcpStream, addr: SocketAddr) {
        let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
        let Ok(read_half) = stream.try_clone() else {
            return;
        };
        let mut reader = BufReader::new(read_half);
        let mut writer = BufWriter::new(stream);

        let mut request_line = String::new();
        if reader.read_line(&mut request_line).is_err() {
            return;
        }
        let mut head = request_line.split_whitespace();
        let method = head.next().unwrap_or("").to_string();
        let path = head.next().unwrap_or("").to_string();
        let mut content_length = 0usize;
        loop {
            let mut line = String::new();
            match reader.read_line(&mut line) {
                Ok(0) | Err(_) => break,
                Ok(_) => {}
            }
            let line = line.trim();
            if line.is_empty() {
                break;
            }
            if let Some((key, value)) = line.split_once(':') {
                if key.eq_ignore_ascii_case("content-length") {
                    content_length = value.trim().parse().unwrap_or(0);
                }
            }
        }
        self.registry.counter("service.requests_total").inc();

        match (method.as_str(), path.as_str()) {
            ("GET", "/healthz") => respond(&mut writer, "200 OK", "text/plain", "ok\n"),
            ("GET", "/metrics") => {
                let body = format!("{}\n", self.registry.snapshot().to_json());
                respond(&mut writer, "200 OK", "application/json", &body);
            }
            ("POST", "/shutdown") => {
                self.request_shutdown();
                respond(&mut writer, "200 OK", "text/plain", "shutting down\n");
                // Wake the accept loop so it observes the flag.
                let _ = TcpStream::connect(addr);
            }
            ("POST", "/campaign") => {
                let mut body = vec![0u8; content_length];
                if reader.read_exact(&mut body).is_err() {
                    return;
                }
                let body = String::from_utf8_lossy(&body).into_owned();
                self.handle_campaign(&mut writer, &body);
            }
            _ => respond(
                &mut writer,
                "404 Not Found",
                "text/plain",
                "no such route\n",
            ),
        }
    }

    /// `POST /campaign`: the body is either raw plan text or a `submit`
    /// wire message. The plan is validated *before* the status line, so
    /// malformed submissions get a clean `400` with a line-numbered
    /// [`WireMsg::Error`]; valid ones get a `200` NDJSON stream of
    /// `Run`/`Metrics` deltas ending in the final `Report`.
    fn handle_campaign(&self, writer: &mut BufWriter<TcpStream>, body: &str) {
        let (plan_text, workers) = if body.trim_start().starts_with('{') {
            match WireMsg::parse_line(body) {
                Ok(WireMsg::Submit { plan, workers }) => (plan, workers as usize),
                Ok(other) => {
                    let line = WireMsg::Error {
                        message: format!("expected a submit message, got {:?}", other.kind()),
                    }
                    .to_line();
                    respond(writer, "400 Bad Request", "application/x-ndjson", &line);
                    return;
                }
                Err(e) => {
                    let line = WireMsg::Error {
                        message: e.to_string(),
                    }
                    .to_line();
                    respond(writer, "400 Bad Request", "application/x-ndjson", &line);
                    return;
                }
            }
        } else {
            (body.to_string(), 0)
        };

        let validated = CampaignPlan::parse(&plan_text)
            .map_err(NonFifoError::from)
            .and_then(|plan| PlanExpansion::of_plan(&plan));
        if let Err(e) = validated {
            let line = WireMsg::Error {
                message: e.to_string(),
            }
            .to_line();
            respond(writer, "400 Bad Request", "application/x-ndjson", &line);
            return;
        }

        let header =
            "HTTP/1.1 200 OK\r\nContent-Type: application/x-ndjson\r\nConnection: close\r\n\r\n";
        if writer.write_all(header.as_bytes()).is_err() || writer.flush().is_err() {
            return;
        }
        let result = {
            let mut sink = |msg: &WireMsg| {
                let _ = writer.write_all(msg.to_line().as_bytes());
                let _ = writer.flush();
            };
            self.run_campaign(&plan_text, workers, &mut sink)
        };
        let final_line = match result {
            Ok(report) => report.to_line(),
            Err(e) => WireMsg::Error {
                message: e.to_string(),
            }
            .to_line(),
        };
        let _ = writer.write_all(final_line.as_bytes());
        let _ = writer.flush();
    }
}

fn respond(writer: &mut BufWriter<TcpStream>, status: &str, content_type: &str, body: &str) {
    let _ = write!(
        writer,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = writer.flush();
}

/// The `nonfifo worker` loop: reads one [`WireMsg::Shard`] assignment from
/// `input`, re-expands the plan locally, executes the assigned indices in
/// order, and writes one flushed [`WireMsg::Run`] line per completed run
/// to `output` — so a parent reading the pipe sees results the moment
/// they land, and a worker killed mid-shard leaves a clean line boundary.
///
/// `die_after: Some(n)` makes the process exit with a failure status
/// after emitting `n` records — the deterministic crash hook the
/// worker-killed-mid-shard tests use.
///
/// # Errors
///
/// Fails (after writing a [`WireMsg::Error`] line, so the parent sees why)
/// on a missing or malformed assignment, an unparsable plan, or
/// out-of-range indices.
pub fn run_worker(
    input: &mut dyn BufRead,
    output: &mut dyn Write,
    die_after: Option<u64>,
) -> Result<(), NonFifoError> {
    let fail = |output: &mut dyn Write, message: String| -> NonFifoError {
        let _ = output.write_all(
            WireMsg::Error {
                message: message.clone(),
            }
            .to_line()
            .as_bytes(),
        );
        let _ = output.flush();
        NonFifoError::Usage(format!("worker: {message}"))
    };

    let mut line = String::new();
    loop {
        line.clear();
        match input.read_line(&mut line) {
            Ok(0) => return Err(fail(output, "no shard assignment on stdin".to_string())),
            Ok(_) if line.trim().is_empty() => continue,
            Ok(_) => break,
            Err(e) => return Err(fail(output, format!("stdin: {e}"))),
        }
    }
    let msg = WireMsg::parse_line(&line).map_err(|e| fail(output, e.to_string()))?;
    let WireMsg::Shard {
        plan,
        shard,
        of,
        indices,
    } = msg
    else {
        return Err(fail(output, "expected a shard assignment".to_string()));
    };
    let plan = CampaignPlan::parse(&plan).map_err(|e| fail(output, e.to_string()))?;
    let expansion = PlanExpansion::of_plan(&plan).map_err(|e| fail(output, e.to_string()))?;
    let indices: Vec<usize> = indices.iter().map(|&i| i as usize).collect();
    if let Some(&bad) = indices.iter().find(|&&i| i >= expansion.len()) {
        return Err(fail(
            output,
            format!("index {bad} out of range for {} runs", expansion.len()),
        ));
    }
    let spec = ShardSpec {
        shard: shard as usize,
        of: of as usize,
        indices,
    };
    let mut emitted = 0u64;
    spec.execute(&expansion, |record| {
        output
            .write_all(WireMsg::run_delta(record).to_line().as_bytes())
            .expect("worker stdout closed");
        output.flush().expect("worker stdout closed");
        emitted += 1;
        if die_after == Some(emitted) {
            std::process::exit(9);
        }
    });
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::CampaignRunner;

    const PLAN: &str = "\
schema_version 1
scenario smoke
protocols abp seqnum
disciplines fifo prob:0.3
messages 6
seeds 0..3
";

    fn batch_report() -> (String, String) {
        let plan = CampaignPlan::parse(PLAN).unwrap();
        let report = CampaignRunner::new(1).run(&plan.expand()).unwrap();
        (report.render(), report.aggregate_metrics().to_json())
    }

    fn collect(service: &CampaignService, workers: usize) -> (Vec<WireMsg>, WireMsg) {
        let deltas = Mutex::new(Vec::new());
        let mut sink = |msg: &WireMsg| deltas.lock().unwrap().push(msg.clone());
        let report = service.run_campaign(PLAN, workers, &mut sink).unwrap();
        (deltas.into_inner().unwrap(), report)
    }

    #[test]
    fn in_process_service_matches_batch_at_any_worker_count() {
        let (render, aggregate) = batch_report();
        for workers in [1, 2, 4] {
            let service = CampaignService::new(ServiceConfig::default()).unwrap();
            let (deltas, report) = collect(&service, workers);
            let runs = deltas
                .iter()
                .filter(|m| matches!(m, WireMsg::Run { .. }))
                .count();
            assert_eq!(runs, 12, "{workers} workers: one Run delta per run");
            let metrics = deltas
                .iter()
                .filter(|m| matches!(m, WireMsg::Metrics { .. }))
                .count();
            assert_eq!(
                metrics,
                workers.min(12),
                "{workers} workers: one delta per shard"
            );
            match report {
                WireMsg::Report {
                    render: r,
                    cache_hits,
                    aggregate: a,
                } => {
                    assert_eq!(r, render, "{workers} workers");
                    assert_eq!(a.to_json(), aggregate, "{workers} workers");
                    assert_eq!(cache_hits, 0);
                }
                other => panic!("wrong kind: {}", other.kind()),
            }
        }
    }

    #[test]
    fn warm_replay_differs_only_in_the_hit_counter() {
        let service = CampaignService::new(ServiceConfig::default()).unwrap();
        let (_, cold) = collect(&service, 2);
        let (deltas, warm) = collect(&service, 4);
        assert!(
            deltas.iter().all(|m| !matches!(m, WireMsg::Run { .. })),
            "a fully warm campaign executes nothing"
        );
        match (cold, warm) {
            (
                WireMsg::Report {
                    render: cr,
                    aggregate: ca,
                    cache_hits: 0,
                },
                WireMsg::Report {
                    render: wr,
                    aggregate: mut wa,
                    cache_hits: 12,
                },
            ) => {
                assert_eq!(cr, wr);
                wa.counters.insert("campaign.cache_hits".to_string(), 0);
                assert_eq!(ca.to_json(), wa.to_json());
            }
            other => panic!("unexpected reports: {other:?}"),
        }
    }

    #[test]
    fn shard_metrics_deltas_reassemble_the_per_run_aggregate() {
        let service = CampaignService::new(ServiceConfig::default()).unwrap();
        let (deltas, report) = collect(&service, 3);
        let mut merged = MetricsSnapshot {
            schema_version: SCHEMA_VERSION,
            ..MetricsSnapshot::default()
        };
        for delta in &deltas {
            if let WireMsg::Metrics { snapshot, .. } = delta {
                merged.merge_from(snapshot);
            }
        }
        let WireMsg::Report { aggregate, .. } = report else {
            panic!("expected report");
        };
        // The aggregate = merged per-run snapshots + campaign.* counters.
        for (name, value) in &merged.counters {
            assert_eq!(aggregate.counters.get(name), Some(value), "{name}");
        }
        assert!(aggregate.counters.contains_key("campaign.runs_total"));
    }

    #[test]
    fn service_registry_tracks_campaigns_and_workers() {
        let service = CampaignService::new(ServiceConfig::default()).unwrap();
        let _ = collect(&service, 4);
        let snap = service.registry().snapshot();
        assert_eq!(snap.counters["service.campaigns_total"], 1);
        assert_eq!(snap.counters["service.runs_total"], 12);
        assert_eq!(snap.counters["service.retried_runs"], 0);
        let gauge = &snap.gauges["service.active_workers"];
        assert_eq!(gauge.value, 0, "idle after the campaign");
        assert_eq!(gauge.high_water, 4, "peak = shard count");
        assert!(snap.values["campaign.runs_per_sec"] > 0.0);
    }

    #[test]
    fn malformed_plans_fail_with_line_numbers_before_any_execution() {
        let service = CampaignService::new(ServiceConfig::default()).unwrap();
        let mut sink = |_: &WireMsg| panic!("no deltas for a rejected plan");
        let err = service
            .run_campaign("scenario x\nwarble 3\n", 2, &mut sink)
            .unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
    }

    #[test]
    fn worker_loop_round_trips_a_shard_over_buffers() {
        let plan = CampaignPlan::parse(PLAN).unwrap();
        let expansion = PlanExpansion::of_plan(&plan).unwrap();
        let shard = &expansion.shard_all(3)[1];
        let assignment = WireMsg::shard_assignment(PLAN, shard).to_line();
        let mut output = Vec::new();
        run_worker(&mut assignment.as_bytes(), &mut output, None).unwrap();
        let records: Vec<ShardRecord> = String::from_utf8(output)
            .unwrap()
            .lines()
            .map(|l| WireMsg::parse_line(l).unwrap().into_shard_record().unwrap())
            .collect();
        assert_eq!(records, shard.execute(&expansion, |_| {}).records);
    }

    #[test]
    fn worker_loop_rejects_bad_assignments_with_an_error_line() {
        for (input, needle) in [
            ("", "no shard assignment"),
            ("not json\n", "wire:"),
            (
                "{\"v\":1,\"type\":\"submit\",\"plan\":\"x\",\"workers\":1}\n",
                "expected a shard assignment",
            ),
        ] {
            let mut output = Vec::new();
            let err = run_worker(&mut input.as_bytes(), &mut output, None).unwrap_err();
            assert!(err.to_string().contains(needle), "{input:?}: {err}");
            let line = String::from_utf8(output).unwrap();
            assert!(
                matches!(WireMsg::parse_line(&line).unwrap(), WireMsg::Error { .. }),
                "{input:?}: parent-visible error line"
            );
        }
    }
}
