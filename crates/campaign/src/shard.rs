//! The campaign pipeline as three explicit, separately drivable stages:
//! **expand** ([`PlanExpansion`]) → **execute** ([`ShardSpec::execute`]) →
//! **merge** ([`merge_reports`]).
//!
//! The batch runner, the `nonfifo serve` daemon, and the `nonfifo worker`
//! subprocess all drive these same stages; they differ only in *where*
//! each stage runs. A worker process receives the plan text plus a list of
//! run indices, re-expands the plan locally (expansion is deterministic,
//! so shipping indices is enough), executes its slice, and streams one
//! record per run. The merge stage reassembles records **in input order,
//! keyed by spec fingerprint**: every record must name the fingerprint of
//! the spec at its index, so a worker that drifted (stale binary, edited
//! plan, corrupted pipe) is caught at merge time instead of silently
//! corrupting the report. Because every run is a deterministic function of
//! its spec, the merged report is byte-identical to a single-process batch
//! run at any worker count — the property the daemon's CI smoke diffs.

use crate::cache::{CachedRun, CampaignCache};
use crate::plan::CampaignPlan;
use crate::runner::{execute_one, CampaignReport, RunRecord};
use crate::spec::RunSpec;
use nonfifo_core::NonFifoError;
use nonfifo_protocols::catalog;

/// Stage 1: a validated, expanded run list.
///
/// Construction validates every spec (protocol names against the catalog,
/// discipline parameters) so the execute stage can assume well-formed
/// input — a worker never discovers a typo three shards into a campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanExpansion {
    runs: Vec<RunSpec>,
}

impl PlanExpansion {
    /// Validates an already-expanded run list.
    ///
    /// # Errors
    ///
    /// Fails on unknown protocol names or invalid discipline parameters.
    pub fn new(runs: Vec<RunSpec>) -> Result<PlanExpansion, NonFifoError> {
        for spec in &runs {
            catalog::by_name(&spec.protocol).map_err(|e| NonFifoError::Usage(e.to_string()))?;
            spec.discipline.validate()?;
        }
        Ok(PlanExpansion { runs })
    }

    /// Expands and validates a parsed plan.
    ///
    /// # Errors
    ///
    /// Fails on unknown protocol names or invalid discipline parameters
    /// (plan parsing already rejects most of these; this also covers
    /// plans built programmatically).
    pub fn of_plan(plan: &CampaignPlan) -> Result<PlanExpansion, NonFifoError> {
        PlanExpansion::new(plan.expand())
    }

    /// The expanded runs, in input order.
    pub fn runs(&self) -> &[RunSpec] {
        &self.runs
    }

    /// Number of runs in the expansion.
    pub fn len(&self) -> usize {
        self.runs.len()
    }

    /// True for an empty expansion.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Splits the cache-consulting pre-pass out of the execute stage:
    /// returns the replayed records (marked `cached`) and the indices
    /// still to run, both in input order.
    pub fn partition_cached(&self, cache: &CampaignCache) -> (Vec<(usize, RunRecord)>, Vec<usize>) {
        let mut cached = Vec::new();
        let mut misses = Vec::new();
        for (i, spec) in self.runs.iter().enumerate() {
            match cache.lookup(spec) {
                Some(hit) => cached.push((i, hit)),
                None => misses.push(i),
            }
        }
        (cached, misses)
    }

    /// Partitions `indices` round-robin into `n` shards. Round-robin (not
    /// contiguous blocks) because adjacent runs share a scenario and
    /// therefore a cost profile — interleaving balances the expensive
    /// scenario across every worker instead of handing it to one.
    ///
    /// Shards with no work are dropped, so the result may be shorter than
    /// `n`; it is empty only if `indices` is.
    pub fn shards(&self, indices: &[usize], n: usize) -> Vec<ShardSpec> {
        let n = n.max(1).min(indices.len().max(1));
        let mut shards: Vec<ShardSpec> = (0..n)
            .map(|shard| ShardSpec {
                shard,
                of: n,
                indices: Vec::new(),
            })
            .collect();
        for (slot, &index) in indices.iter().enumerate() {
            shards[slot % n].indices.push(index);
        }
        shards.retain(|s| !s.indices.is_empty());
        shards
    }

    /// [`shards`](PlanExpansion::shards) over every run in the expansion.
    pub fn shard_all(&self, n: usize) -> Vec<ShardSpec> {
        let all: Vec<usize> = (0..self.runs.len()).collect();
        self.shards(&all, n)
    }

    /// Partitions `indices` into `n` shards balanced by **expected run
    /// cost** ([`cost_weight`]) instead of run count: longest-processing-
    /// time greedy — heaviest run first, each to the lightest-loaded shard.
    /// Round-robin balances counts, but a plan mixing an `outnumber` cell
    /// with cheap `abp` seeds ships one worker a shard that runs orders of
    /// magnitude longer than the rest; weighting by cost keeps wall time
    /// balanced instead.
    ///
    /// The partition is a pure function of the expansion (weight ties
    /// resolve in input order, load ties to the lowest shard id), and the
    /// merged report is byte-identical to any other partition's — the
    /// merge is fingerprint-keyed and index-addressed, so *placement*
    /// can never leak into the report.
    ///
    /// Shards with no work are dropped, exactly as in
    /// [`shards`](PlanExpansion::shards).
    pub fn shards_weighted(&self, indices: &[usize], n: usize) -> Vec<ShardSpec> {
        let n = n.max(1).min(indices.len().max(1));
        let mut order: Vec<usize> = indices.to_vec();
        // Stable sort: equal weights keep input order.
        order.sort_by_key(|&i| std::cmp::Reverse(cost_weight(&self.runs[i])));
        let mut shards: Vec<ShardSpec> = (0..n)
            .map(|shard| ShardSpec {
                shard,
                of: n,
                indices: Vec::new(),
            })
            .collect();
        let mut loads = vec![0u64; n];
        for &index in &order {
            let slot = loads
                .iter()
                .enumerate()
                .min_by_key(|&(s, &load)| (load, s))
                .map(|(s, _)| s)
                .expect("n >= 1 shard slots");
            loads[slot] = loads[slot].saturating_add(cost_weight(&self.runs[index]));
            shards[slot].indices.push(index);
        }
        for shard in &mut shards {
            // Execution and the wire protocol expect ascending indices.
            shard.indices.sort_unstable();
        }
        shards.retain(|s| !s.indices.is_empty());
        shards
    }

    /// Percent imbalance of a partition under [`cost_weight`]: the
    /// heaviest shard's load over the ideal per-shard average, ×100 — so
    /// 100 is a perfect balance and 300 means the slowest worker carries
    /// three averages. The `service.shard_imbalance` gauge reports this.
    pub fn shard_imbalance_pct(&self, shards: &[ShardSpec]) -> u64 {
        let loads: Vec<u64> = shards
            .iter()
            .map(|s| s.indices.iter().map(|&i| cost_weight(&self.runs[i])).sum())
            .collect();
        let total: u64 = loads.iter().sum();
        let max = loads.iter().copied().max().unwrap_or(0);
        if total == 0 {
            return 100;
        }
        let avg = total as f64 / loads.len() as f64;
        ((max as f64 / avg) * 100.0).round() as u64
    }
}

/// Expected relative cost of one run — the weight
/// [`PlanExpansion::shards_weighted`] balances. Linear in the message
/// count for ordinary protocols; the catalog's `outnumber<L>` and
/// `afek<k>` families drive state spaces that grow exponentially with
/// traffic, so their weight doubles every few messages (capped well below
/// overflow so a single cell cannot swamp the load sums).
pub fn cost_weight(spec: &RunSpec) -> u64 {
    let base = spec.messages.max(1);
    let exponential = spec.protocol.starts_with("outnumber") || spec.protocol.starts_with("afek");
    if exponential {
        base.saturating_mul(1u64 << (spec.messages / 4).min(20))
    } else {
        base
    }
}

/// Stage 2's unit of assignment: one worker's slice of the expansion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardSpec {
    /// This shard's position in the partition.
    pub shard: usize,
    /// Total number of shards in the partition.
    pub of: usize,
    /// Indices into the expansion's run list, ascending.
    pub indices: Vec<usize>,
}

impl ShardSpec {
    /// Executes the shard's runs in index order on the calling thread,
    /// invoking `sink` after each — the streaming hook the worker process
    /// uses to emit a wire record per completed run. Returns the complete
    /// shard report.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range for `expansion` (the daemon and
    /// worker validate indices when they accept a shard).
    pub fn execute(
        &self,
        expansion: &PlanExpansion,
        mut sink: impl FnMut(&ShardRecord),
    ) -> ShardReport {
        let mut records = Vec::with_capacity(self.indices.len());
        for &index in &self.indices {
            let spec = &expansion.runs()[index];
            let record = execute_one(spec);
            let shard_record = ShardRecord {
                index,
                spec_fingerprint: spec.fingerprint(),
                run: CachedRun::from(&record),
            };
            sink(&shard_record);
            records.push(shard_record);
        }
        ShardReport {
            shard: self.shard,
            records,
        }
    }
}

/// One completed run, addressed for the merge stage: the index says where
/// it lands, the spec fingerprint proves the executor ran the same spec
/// the merger holds at that index.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardRecord {
    /// Index into the expansion's run list.
    pub index: usize,
    /// [`RunSpec::fingerprint`] of the spec this record answers.
    pub spec_fingerprint: u64,
    /// The run result, in its one serializable form.
    pub run: CachedRun,
}

/// Stage 2's output: every record a shard produced.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardReport {
    /// Which shard produced these records.
    pub shard: usize,
    /// Completed runs, in shard-index order.
    pub records: Vec<ShardRecord>,
}

impl ShardReport {
    /// Wraps already-executed records (the batch runner's thread pool
    /// produces `RunRecord`s directly) as a shard report.
    pub fn from_records(shard: usize, records: &[(usize, RunRecord)]) -> ShardReport {
        ShardReport {
            shard,
            records: records
                .iter()
                .map(|(index, record)| ShardRecord {
                    index: *index,
                    spec_fingerprint: record.spec.fingerprint(),
                    run: CachedRun::from(record),
                })
                .collect(),
        }
    }

    /// The indices this report covers that `assigned` expected but did not
    /// get — what the daemon re-dispatches when a worker dies mid-shard.
    pub fn missing_from(&self, assigned: &[usize]) -> Vec<usize> {
        assigned
            .iter()
            .copied()
            .filter(|i| !self.records.iter().any(|r| r.index == *i))
            .collect()
    }
}

/// Stage 3: reassembles cache replays and shard records into one
/// [`CampaignReport`], in input order.
///
/// The merge is *fingerprint-keyed*: a shard record only fills slot `i` if
/// its `spec_fingerprint` equals the fingerprint of the spec at `i`. With
/// that check, the merged report is a pure function of the expansion —
/// byte-identical whatever the shard count, completion order, or mix of
/// cached and fresh records.
///
/// # Errors
///
/// Fails (`NonFifoError::Usage`) on out-of-range indices, fingerprint
/// mismatches, two records for one slot, or unfilled slots — each of which
/// means an executor and the merger disagree about the plan.
pub fn merge_reports(
    expansion: &PlanExpansion,
    cached: Vec<(usize, RunRecord)>,
    parts: Vec<ShardReport>,
) -> Result<CampaignReport, NonFifoError> {
    let mut slots: Vec<Option<RunRecord>> = expansion.runs().iter().map(|_| None).collect();
    let cache_hits = cached.len();
    for (index, record) in cached {
        let slot = slots
            .get_mut(index)
            .ok_or_else(|| merge_err(format!("cached index {index} out of range")))?;
        if slot.is_some() {
            return Err(merge_err(format!("two records for run {index}")));
        }
        *slot = Some(record);
    }
    for part in &parts {
        for record in &part.records {
            let index = record.index;
            let spec = expansion
                .runs()
                .get(index)
                .ok_or_else(|| {
                    merge_err(format!("shard {} index {index} out of range", part.shard))
                })?
                .clone();
            if record.spec_fingerprint != spec.fingerprint() {
                return Err(merge_err(format!(
                    "shard {} record for run {index} answers spec {:016x}, expected {:016x} \
                     (worker ran a different plan?)",
                    part.shard,
                    record.spec_fingerprint,
                    spec.fingerprint()
                )));
            }
            let slot = &mut slots[index];
            if slot.is_some() {
                return Err(merge_err(format!("two records for run {index}")));
            }
            let run = &record.run;
            *slot = Some(RunRecord {
                spec,
                outcome: run.outcome,
                fingerprint: run.fingerprint,
                steps: run.steps,
                fwd_sends: run.fwd_sends,
                delivered: run.delivered,
                metrics: run.metrics.clone(),
                cached: false,
            });
        }
    }
    let missing = slots.iter().filter(|s| s.is_none()).count();
    if missing > 0 {
        return Err(merge_err(format!(
            "{missing} of {} runs produced no record",
            slots.len()
        )));
    }
    Ok(CampaignReport {
        records: slots.into_iter().map(Option::unwrap).collect(),
        cache_hits,
    })
}

fn merge_err(message: String) -> NonFifoError {
    NonFifoError::Usage(format!("shard merge: {message}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::CampaignRunner;
    use crate::spec::ScenarioSpec;
    use nonfifo_channel::Discipline;

    fn expansion() -> PlanExpansion {
        PlanExpansion::new(
            ScenarioSpec::new("t")
                .protocol("abp")
                .protocol("seqnum")
                .discipline(Discipline::Fifo)
                .discipline(Discipline::Probabilistic { q: 0.3 })
                .message_counts(&[5])
                .seeds(0..3)
                .expand(),
        )
        .unwrap()
    }

    #[test]
    fn validation_rejects_unknown_protocols() {
        let mut runs = expansion().runs().to_vec();
        runs[2].protocol = "warbler".into();
        let err = PlanExpansion::new(runs).unwrap_err();
        assert!(err.to_string().contains("warbler"), "{err}");
    }

    #[test]
    fn round_robin_shards_cover_exactly_the_input() {
        let exp = expansion();
        for n in [1, 2, 3, 4, 7, exp.len(), exp.len() + 5] {
            let shards = exp.shard_all(n);
            assert!(shards.len() <= n.min(exp.len()));
            let mut seen: Vec<usize> = shards.iter().flat_map(|s| s.indices.clone()).collect();
            seen.sort_unstable();
            assert_eq!(seen, (0..exp.len()).collect::<Vec<_>>(), "n={n}");
            // Balanced: sizes differ by at most one.
            let sizes: Vec<usize> = shards.iter().map(|s| s.indices.len()).collect();
            let (lo, hi) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
            assert!(hi - lo <= 1, "n={n}: unbalanced {sizes:?}");
        }
    }

    #[test]
    fn sharded_execution_merges_byte_identically_at_any_worker_count() {
        let exp = expansion();
        let baseline = CampaignRunner::new(1).run(exp.runs()).unwrap();
        for n in [1, 2, 4] {
            let parts: Vec<ShardReport> = exp
                .shard_all(n)
                .iter()
                .map(|shard| shard.execute(&exp, |_| {}))
                .collect();
            let merged = merge_reports(&exp, Vec::new(), parts).unwrap();
            assert_eq!(merged.render(), baseline.render(), "{n} shards");
            assert_eq!(
                merged.aggregate_metrics().to_json(),
                baseline.aggregate_metrics().to_json(),
                "{n} shards"
            );
        }
    }

    #[test]
    fn merge_rejects_fingerprint_mismatches_and_gaps() {
        let exp = expansion();
        let mut parts: Vec<ShardReport> = exp
            .shard_all(2)
            .iter()
            .map(|shard| shard.execute(&exp, |_| {}))
            .collect();

        // A record answering the wrong spec is refused by name.
        let mut forged = parts.clone();
        forged[0].records[0].spec_fingerprint ^= 1;
        let err = merge_reports(&exp, Vec::new(), forged).unwrap_err();
        assert!(err.to_string().contains("different plan"), "{err}");

        // A dropped record is a counted gap, not a silent hole.
        parts[1].records.pop();
        let err = merge_reports(&exp, Vec::new(), parts.clone()).unwrap_err();
        assert!(err.to_string().contains("1 of 12 runs"), "{err}");

        // Refilling the gap via the retry path heals the merge.
        let assigned = exp.shard_all(2)[1].indices.clone();
        let missing = parts[1].missing_from(&assigned);
        assert_eq!(missing.len(), 1);
        let retry = ShardSpec {
            shard: 2,
            of: 3,
            indices: missing,
        }
        .execute(&exp, |_| {});
        parts.push(retry);
        let healed = merge_reports(&exp, Vec::new(), parts).unwrap();
        assert_eq!(
            healed.render(),
            CampaignRunner::new(1).run(exp.runs()).unwrap().render()
        );
    }

    #[test]
    fn duplicate_records_are_rejected() {
        let exp = expansion();
        let part = exp.shard_all(1)[0].execute(&exp, |_| {});
        let err = merge_reports(&exp, Vec::new(), vec![part.clone(), part]).unwrap_err();
        assert!(err.to_string().contains("two records"), "{err}");
    }

    /// One exponential `outnumber5` cell next to a pile of cheap `abp`
    /// seeds — the shape round-robin splits badly.
    fn skewed_expansion() -> PlanExpansion {
        let mut runs = ScenarioSpec::new("hot")
            .protocol("outnumber5")
            .discipline(Discipline::Fifo)
            .message_counts(&[12])
            .seeds(0..1)
            .expand();
        runs.extend(
            ScenarioSpec::new("cold")
                .protocol("abp")
                .discipline(Discipline::Fifo)
                .message_counts(&[5])
                .seeds(0..7)
                .expand(),
        );
        PlanExpansion::new(runs).unwrap()
    }

    fn max_load(exp: &PlanExpansion, shards: &[ShardSpec]) -> u64 {
        shards
            .iter()
            .map(|s| s.indices.iter().map(|&i| cost_weight(&exp.runs()[i])).sum())
            .max()
            .unwrap_or(0)
    }

    #[test]
    fn cost_weight_is_linear_except_for_exponential_families() {
        let mut spec = expansion().runs()[0].clone();
        spec.protocol = "seqnum".into();
        spec.messages = 12;
        assert_eq!(cost_weight(&spec), 12);
        spec.protocol = "outnumber5".into();
        assert_eq!(cost_weight(&spec), 12 << 3);
        spec.messages = 0;
        assert_eq!(cost_weight(&spec), 1, "zero-message runs still cost one");
    }

    #[test]
    fn weighted_shards_cover_exactly_the_input() {
        let exp = skewed_expansion();
        let all: Vec<usize> = (0..exp.len()).collect();
        for n in [1, 2, 3, exp.len(), exp.len() + 5] {
            let shards = exp.shards_weighted(&all, n);
            assert!(shards.len() <= n.min(exp.len()));
            let mut seen: Vec<usize> = shards.iter().flat_map(|s| s.indices.clone()).collect();
            seen.sort_unstable();
            assert_eq!(seen, all, "n={n}");
            for shard in &shards {
                assert!(
                    shard.indices.windows(2).all(|w| w[0] < w[1]),
                    "n={n}: indices must stay ascending for the wire protocol"
                );
            }
            // Pure function of the expansion: re-partitioning is identical.
            assert_eq!(shards, exp.shards_weighted(&all, n), "n={n}");
        }
    }

    #[test]
    fn weighted_shards_beat_round_robin_on_a_skewed_plan() {
        let exp = skewed_expansion();
        let all: Vec<usize> = (0..exp.len()).collect();
        let round_robin = exp.shards(&all, 2);
        let weighted = exp.shards_weighted(&all, 2);
        assert!(
            max_load(&exp, &weighted) < max_load(&exp, &round_robin),
            "LPT must shrink the critical path: weighted {} vs round-robin {}",
            max_load(&exp, &weighted),
            max_load(&exp, &round_robin),
        );
        assert!(
            exp.shard_imbalance_pct(&weighted) <= exp.shard_imbalance_pct(&round_robin),
            "imbalance gauge must not worsen under weighting"
        );
        // The helper's scale: 100 = perfect, and a uniform plan hits it.
        let uniform = expansion();
        let all: Vec<usize> = (0..uniform.len()).collect();
        assert_eq!(
            uniform.shard_imbalance_pct(&uniform.shards_weighted(&all, 3)),
            100,
            "12 equal-cost runs across 3 shards is a perfect balance"
        );
    }

    #[test]
    fn weighted_sharded_execution_merges_byte_identically() {
        // Placement must never leak into the report: the weighted partition
        // merges to the same bytes as the single-worker baseline.
        let exp = expansion();
        let baseline = CampaignRunner::new(1).run(exp.runs()).unwrap();
        let all: Vec<usize> = (0..exp.len()).collect();
        for n in [1, 2, 4] {
            let parts: Vec<ShardReport> = exp
                .shards_weighted(&all, n)
                .iter()
                .map(|shard| shard.execute(&exp, |_| {}))
                .collect();
            let merged = merge_reports(&exp, Vec::new(), parts).unwrap();
            assert_eq!(merged.render(), baseline.render(), "{n} weighted shards");
            assert_eq!(
                merged.aggregate_metrics().to_json(),
                baseline.aggregate_metrics().to_json(),
                "{n} weighted shards"
            );
        }
    }

    #[test]
    fn execute_streams_every_record_in_index_order() {
        let exp = expansion();
        let shard = &exp.shard_all(3)[1];
        let mut streamed = Vec::new();
        let report = shard.execute(&exp, |r| streamed.push(r.index));
        assert_eq!(streamed, shard.indices);
        assert_eq!(report.records.len(), shard.indices.len());
        assert!(report.missing_from(&shard.indices).is_empty());
    }
}
