//! The campaign pipeline as three explicit, separately drivable stages:
//! **expand** ([`PlanExpansion`]) → **execute** ([`ShardSpec::execute`]) →
//! **merge** ([`merge_reports`]).
//!
//! The batch runner, the `nonfifo serve` daemon, and the `nonfifo worker`
//! subprocess all drive these same stages; they differ only in *where*
//! each stage runs. A worker process receives the plan text plus a list of
//! run indices, re-expands the plan locally (expansion is deterministic,
//! so shipping indices is enough), executes its slice, and streams one
//! record per run. The merge stage reassembles records **in input order,
//! keyed by spec fingerprint**: every record must name the fingerprint of
//! the spec at its index, so a worker that drifted (stale binary, edited
//! plan, corrupted pipe) is caught at merge time instead of silently
//! corrupting the report. Because every run is a deterministic function of
//! its spec, the merged report is byte-identical to a single-process batch
//! run at any worker count — the property the daemon's CI smoke diffs.

use crate::cache::{CachedRun, CampaignCache};
use crate::plan::CampaignPlan;
use crate::runner::{execute_one, CampaignReport, RunRecord};
use crate::spec::RunSpec;
use nonfifo_core::NonFifoError;
use nonfifo_protocols::catalog;

/// Stage 1: a validated, expanded run list.
///
/// Construction validates every spec (protocol names against the catalog,
/// discipline parameters) so the execute stage can assume well-formed
/// input — a worker never discovers a typo three shards into a campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanExpansion {
    runs: Vec<RunSpec>,
}

impl PlanExpansion {
    /// Validates an already-expanded run list.
    ///
    /// # Errors
    ///
    /// Fails on unknown protocol names or invalid discipline parameters.
    pub fn new(runs: Vec<RunSpec>) -> Result<PlanExpansion, NonFifoError> {
        for spec in &runs {
            catalog::by_name(&spec.protocol).map_err(|e| NonFifoError::Usage(e.to_string()))?;
            spec.discipline.validate()?;
        }
        Ok(PlanExpansion { runs })
    }

    /// Expands and validates a parsed plan.
    ///
    /// # Errors
    ///
    /// Fails on unknown protocol names or invalid discipline parameters
    /// (plan parsing already rejects most of these; this also covers
    /// plans built programmatically).
    pub fn of_plan(plan: &CampaignPlan) -> Result<PlanExpansion, NonFifoError> {
        PlanExpansion::new(plan.expand())
    }

    /// The expanded runs, in input order.
    pub fn runs(&self) -> &[RunSpec] {
        &self.runs
    }

    /// Number of runs in the expansion.
    pub fn len(&self) -> usize {
        self.runs.len()
    }

    /// True for an empty expansion.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Splits the cache-consulting pre-pass out of the execute stage:
    /// returns the replayed records (marked `cached`) and the indices
    /// still to run, both in input order.
    pub fn partition_cached(&self, cache: &CampaignCache) -> (Vec<(usize, RunRecord)>, Vec<usize>) {
        let mut cached = Vec::new();
        let mut misses = Vec::new();
        for (i, spec) in self.runs.iter().enumerate() {
            match cache.lookup(spec) {
                Some(hit) => cached.push((i, hit)),
                None => misses.push(i),
            }
        }
        (cached, misses)
    }

    /// Partitions `indices` round-robin into `n` shards. Round-robin (not
    /// contiguous blocks) because adjacent runs share a scenario and
    /// therefore a cost profile — interleaving balances the expensive
    /// scenario across every worker instead of handing it to one.
    ///
    /// Shards with no work are dropped, so the result may be shorter than
    /// `n`; it is empty only if `indices` is.
    pub fn shards(&self, indices: &[usize], n: usize) -> Vec<ShardSpec> {
        let n = n.max(1).min(indices.len().max(1));
        let mut shards: Vec<ShardSpec> = (0..n)
            .map(|shard| ShardSpec {
                shard,
                of: n,
                indices: Vec::new(),
            })
            .collect();
        for (slot, &index) in indices.iter().enumerate() {
            shards[slot % n].indices.push(index);
        }
        shards.retain(|s| !s.indices.is_empty());
        shards
    }

    /// [`shards`](PlanExpansion::shards) over every run in the expansion.
    pub fn shard_all(&self, n: usize) -> Vec<ShardSpec> {
        let all: Vec<usize> = (0..self.runs.len()).collect();
        self.shards(&all, n)
    }
}

/// Stage 2's unit of assignment: one worker's slice of the expansion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardSpec {
    /// This shard's position in the partition.
    pub shard: usize,
    /// Total number of shards in the partition.
    pub of: usize,
    /// Indices into the expansion's run list, ascending.
    pub indices: Vec<usize>,
}

impl ShardSpec {
    /// Executes the shard's runs in index order on the calling thread,
    /// invoking `sink` after each — the streaming hook the worker process
    /// uses to emit a wire record per completed run. Returns the complete
    /// shard report.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range for `expansion` (the daemon and
    /// worker validate indices when they accept a shard).
    pub fn execute(
        &self,
        expansion: &PlanExpansion,
        mut sink: impl FnMut(&ShardRecord),
    ) -> ShardReport {
        let mut records = Vec::with_capacity(self.indices.len());
        for &index in &self.indices {
            let spec = &expansion.runs()[index];
            let record = execute_one(spec);
            let shard_record = ShardRecord {
                index,
                spec_fingerprint: spec.fingerprint(),
                run: CachedRun::from(&record),
            };
            sink(&shard_record);
            records.push(shard_record);
        }
        ShardReport {
            shard: self.shard,
            records,
        }
    }
}

/// One completed run, addressed for the merge stage: the index says where
/// it lands, the spec fingerprint proves the executor ran the same spec
/// the merger holds at that index.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardRecord {
    /// Index into the expansion's run list.
    pub index: usize,
    /// [`RunSpec::fingerprint`] of the spec this record answers.
    pub spec_fingerprint: u64,
    /// The run result, in its one serializable form.
    pub run: CachedRun,
}

/// Stage 2's output: every record a shard produced.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardReport {
    /// Which shard produced these records.
    pub shard: usize,
    /// Completed runs, in shard-index order.
    pub records: Vec<ShardRecord>,
}

impl ShardReport {
    /// Wraps already-executed records (the batch runner's thread pool
    /// produces `RunRecord`s directly) as a shard report.
    pub fn from_records(shard: usize, records: &[(usize, RunRecord)]) -> ShardReport {
        ShardReport {
            shard,
            records: records
                .iter()
                .map(|(index, record)| ShardRecord {
                    index: *index,
                    spec_fingerprint: record.spec.fingerprint(),
                    run: CachedRun::from(record),
                })
                .collect(),
        }
    }

    /// The indices this report covers that `assigned` expected but did not
    /// get — what the daemon re-dispatches when a worker dies mid-shard.
    pub fn missing_from(&self, assigned: &[usize]) -> Vec<usize> {
        assigned
            .iter()
            .copied()
            .filter(|i| !self.records.iter().any(|r| r.index == *i))
            .collect()
    }
}

/// Stage 3: reassembles cache replays and shard records into one
/// [`CampaignReport`], in input order.
///
/// The merge is *fingerprint-keyed*: a shard record only fills slot `i` if
/// its `spec_fingerprint` equals the fingerprint of the spec at `i`. With
/// that check, the merged report is a pure function of the expansion —
/// byte-identical whatever the shard count, completion order, or mix of
/// cached and fresh records.
///
/// # Errors
///
/// Fails (`NonFifoError::Usage`) on out-of-range indices, fingerprint
/// mismatches, two records for one slot, or unfilled slots — each of which
/// means an executor and the merger disagree about the plan.
pub fn merge_reports(
    expansion: &PlanExpansion,
    cached: Vec<(usize, RunRecord)>,
    parts: Vec<ShardReport>,
) -> Result<CampaignReport, NonFifoError> {
    let mut slots: Vec<Option<RunRecord>> = expansion.runs().iter().map(|_| None).collect();
    let cache_hits = cached.len();
    for (index, record) in cached {
        let slot = slots
            .get_mut(index)
            .ok_or_else(|| merge_err(format!("cached index {index} out of range")))?;
        if slot.is_some() {
            return Err(merge_err(format!("two records for run {index}")));
        }
        *slot = Some(record);
    }
    for part in &parts {
        for record in &part.records {
            let index = record.index;
            let spec = expansion
                .runs()
                .get(index)
                .ok_or_else(|| {
                    merge_err(format!("shard {} index {index} out of range", part.shard))
                })?
                .clone();
            if record.spec_fingerprint != spec.fingerprint() {
                return Err(merge_err(format!(
                    "shard {} record for run {index} answers spec {:016x}, expected {:016x} \
                     (worker ran a different plan?)",
                    part.shard,
                    record.spec_fingerprint,
                    spec.fingerprint()
                )));
            }
            let slot = &mut slots[index];
            if slot.is_some() {
                return Err(merge_err(format!("two records for run {index}")));
            }
            let run = &record.run;
            *slot = Some(RunRecord {
                spec,
                outcome: run.outcome,
                fingerprint: run.fingerprint,
                steps: run.steps,
                fwd_sends: run.fwd_sends,
                delivered: run.delivered,
                metrics: run.metrics.clone(),
                cached: false,
            });
        }
    }
    let missing = slots.iter().filter(|s| s.is_none()).count();
    if missing > 0 {
        return Err(merge_err(format!(
            "{missing} of {} runs produced no record",
            slots.len()
        )));
    }
    Ok(CampaignReport {
        records: slots.into_iter().map(Option::unwrap).collect(),
        cache_hits,
    })
}

fn merge_err(message: String) -> NonFifoError {
    NonFifoError::Usage(format!("shard merge: {message}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::CampaignRunner;
    use crate::spec::ScenarioSpec;
    use nonfifo_channel::Discipline;

    fn expansion() -> PlanExpansion {
        PlanExpansion::new(
            ScenarioSpec::new("t")
                .protocol("abp")
                .protocol("seqnum")
                .discipline(Discipline::Fifo)
                .discipline(Discipline::Probabilistic { q: 0.3 })
                .message_counts(&[5])
                .seeds(0..3)
                .expand(),
        )
        .unwrap()
    }

    #[test]
    fn validation_rejects_unknown_protocols() {
        let mut runs = expansion().runs().to_vec();
        runs[2].protocol = "warbler".into();
        let err = PlanExpansion::new(runs).unwrap_err();
        assert!(err.to_string().contains("warbler"), "{err}");
    }

    #[test]
    fn round_robin_shards_cover_exactly_the_input() {
        let exp = expansion();
        for n in [1, 2, 3, 4, 7, exp.len(), exp.len() + 5] {
            let shards = exp.shard_all(n);
            assert!(shards.len() <= n.min(exp.len()));
            let mut seen: Vec<usize> = shards.iter().flat_map(|s| s.indices.clone()).collect();
            seen.sort_unstable();
            assert_eq!(seen, (0..exp.len()).collect::<Vec<_>>(), "n={n}");
            // Balanced: sizes differ by at most one.
            let sizes: Vec<usize> = shards.iter().map(|s| s.indices.len()).collect();
            let (lo, hi) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
            assert!(hi - lo <= 1, "n={n}: unbalanced {sizes:?}");
        }
    }

    #[test]
    fn sharded_execution_merges_byte_identically_at_any_worker_count() {
        let exp = expansion();
        let baseline = CampaignRunner::new(1).run(exp.runs()).unwrap();
        for n in [1, 2, 4] {
            let parts: Vec<ShardReport> = exp
                .shard_all(n)
                .iter()
                .map(|shard| shard.execute(&exp, |_| {}))
                .collect();
            let merged = merge_reports(&exp, Vec::new(), parts).unwrap();
            assert_eq!(merged.render(), baseline.render(), "{n} shards");
            assert_eq!(
                merged.aggregate_metrics().to_json(),
                baseline.aggregate_metrics().to_json(),
                "{n} shards"
            );
        }
    }

    #[test]
    fn merge_rejects_fingerprint_mismatches_and_gaps() {
        let exp = expansion();
        let mut parts: Vec<ShardReport> = exp
            .shard_all(2)
            .iter()
            .map(|shard| shard.execute(&exp, |_| {}))
            .collect();

        // A record answering the wrong spec is refused by name.
        let mut forged = parts.clone();
        forged[0].records[0].spec_fingerprint ^= 1;
        let err = merge_reports(&exp, Vec::new(), forged).unwrap_err();
        assert!(err.to_string().contains("different plan"), "{err}");

        // A dropped record is a counted gap, not a silent hole.
        parts[1].records.pop();
        let err = merge_reports(&exp, Vec::new(), parts.clone()).unwrap_err();
        assert!(err.to_string().contains("1 of 12 runs"), "{err}");

        // Refilling the gap via the retry path heals the merge.
        let assigned = exp.shard_all(2)[1].indices.clone();
        let missing = parts[1].missing_from(&assigned);
        assert_eq!(missing.len(), 1);
        let retry = ShardSpec {
            shard: 2,
            of: 3,
            indices: missing,
        }
        .execute(&exp, |_| {});
        parts.push(retry);
        let healed = merge_reports(&exp, Vec::new(), parts).unwrap();
        assert_eq!(
            healed.render(),
            CampaignRunner::new(1).run(exp.runs()).unwrap().render()
        );
    }

    #[test]
    fn duplicate_records_are_rejected() {
        let exp = expansion();
        let part = exp.shard_all(1)[0].execute(&exp, |_| {});
        let err = merge_reports(&exp, Vec::new(), vec![part.clone(), part]).unwrap_err();
        assert!(err.to_string().contains("two records"), "{err}");
    }

    #[test]
    fn execute_streams_every_record_in_index_order() {
        let exp = expansion();
        let shard = &exp.shard_all(3)[1];
        let mut streamed = Vec::new();
        let report = shard.execute(&exp, |r| streamed.push(r.index));
        assert_eq!(streamed, shard.indices);
        assert_eq!(report.records.len(), shard.indices.len());
        assert!(report.missing_from(&shard.indices).is_empty());
    }
}
