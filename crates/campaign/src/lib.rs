//! Campaign engine: declarative scenario matrices over the `nonfifo`
//! simulation stack, executed by a work-stealing thread pool with
//! deterministic, cacheable results.
//!
//! The experiment suite kept re-growing the same shape by hand: a nest of
//! loops over protocols × channels × message counts × seeds, each
//! iteration building a simulation, running it, and accumulating a table.
//! This crate makes that shape a value:
//!
//! - [`ScenarioSpec`] — one axis-product of runs, built fluently or parsed
//!   from the campaign plan DSL ([`CampaignPlan`]), expanding into
//!   individually fingerprinted [`RunSpec`]s.
//! - [`CampaignRunner`] — executes a run list on scoped worker threads,
//!   claiming work run-at-a-time from the shared
//!   [`ChunkCursor`](nonfifo_adversary::ChunkCursor); results merge in
//!   input order, so reports and aggregate metrics are **byte-identical at
//!   any thread count**.
//! - [`CampaignCache`] — runs are deterministic functions of their specs,
//!   so results key by spec fingerprint and replay for free on repeated
//!   campaigns; a cache replay is indistinguishable from a fresh run in
//!   every artifact.
//! - [`CampaignReport`] — the merged records, a markdown rendering, one
//!   aggregate [`MetricsSnapshot`](nonfifo_telemetry::MetricsSnapshot)
//!   (per-run registries merged in run order), and the campaign-level
//!   error for the CLI exit-code contract.
//! - [`experiments`] — E14 and E15, the paper experiments that are
//!   campaigns, ported off their hand-rolled loops.
//!
//! Under the runner sits an explicit expand → execute → merge pipeline
//! ([`PlanExpansion`], [`ShardSpec`], [`merge_reports`]) whose merge is
//! keyed on expansion index + spec fingerprint, so *any* partition of a
//! campaign, executed anywhere, reassembles byte-identically. That is
//! what lets the same engine run as a long-lived HTTP daemon
//! ([`CampaignService`], `nonfifo serve`) sharding plans across worker
//! *processes* that speak the NDJSON wire protocol ([`WireMsg`]) over
//! their pipes — see `docs/campaign_service.md`.
//!
//! # Example
//!
//! ```
//! use nonfifo_campaign::{CampaignRunner, ScenarioSpec};
//! use nonfifo_channel::Discipline;
//!
//! let runs = ScenarioSpec::new("quickstart")
//!     .protocol("abp")
//!     .protocol("seqnum")
//!     .discipline(Discipline::Probabilistic { q: 0.3 })
//!     .message_counts(&[10])
//!     .seeds(0..2)
//!     .expand();
//! let report = CampaignRunner::new(0).run(&runs).expect("catalog names");
//! assert_eq!(report.records.len(), 4);
//! assert!(report.worst().is_none(), "both protocols survive PL2p");
//! println!("{}", report.render());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
pub mod experiments;
mod plan;
mod runner;
mod service;
mod shard;
mod spec;
mod wire;

pub use cache::{CacheError, CachedRun, CampaignCache, SharedCache, CACHE_SCHEMA_VERSION};
pub use plan::{CampaignPlan, CampaignPlanError, PLAN_SCHEMA_VERSION};
pub use runner::{CampaignReport, CampaignRunner, RunOutcome, RunRecord};
pub use service::{run_worker, CampaignService, ServiceConfig};
pub use shard::{cost_weight, merge_reports, PlanExpansion, ShardRecord, ShardReport, ShardSpec};
pub use spec::{RunSpec, ScenarioSpec};
pub use wire::{WireError, WireMsg, WIRE_SCHEMA_VERSION};
