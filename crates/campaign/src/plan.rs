//! The campaign plan text format: scenarios as data, in the same lenient
//! line-oriented style as the fault-plan DSL.
//!
//! One directive per line, `#` comments and blank lines ignored:
//!
//! ```text
//! # T5.1 growth, as a campaign
//! schema_version 1       # optional; plans without it parse as v1
//! scenario growth
//! protocols outnumber5 seqnum
//! disciplines prob:0.1 prob:0.3 prob:0.5
//! messages 10 20 40
//! seeds 0..5
//! budget 5000000
//! corruption medium      # optional; start every run from a seeded scramble
//! fault dup 0.1          # optional; verbs are the fault-plan DSL's
//! ```
//!
//! Every `scenario NAME` line opens a new scenario; the axis directives
//! that follow belong to it. Protocol names are resolved against the
//! catalog *at parse time*, so a typo is a line-numbered parse error, not
//! a mid-campaign panic.
//!
//! The plan format is versioned with the same forward-compatibility
//! contract as the campaign cache and the metrics snapshot: an optional
//! `schema_version N` directive (before the first scenario) declares the
//! format the file was written against, versions newer than
//! [`PLAN_SCHEMA_VERSION`] are rejected with a line-numbered error, and
//! unversioned files keep parsing as v1.

use crate::spec::{RunSpec, ScenarioSpec};
use nonfifo_channel::{CorruptionSeverity, Discipline, FaultPlan, SeverityError};
use nonfifo_core::NonFifoError;
use nonfifo_protocols::catalog;
use std::error::Error;
use std::fmt;

/// The newest plan-file schema this build reads (and the version written
/// into new plans). Bump when a directive changes meaning; the parser
/// keeps accepting every older version.
pub const PLAN_SCHEMA_VERSION: u64 = 1;

/// A parsed campaign plan: an ordered list of scenarios.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignPlan {
    /// The schema version the plan file declared (1 when it declared none).
    pub schema_version: u64,
    /// Scenarios in declaration order.
    pub scenarios: Vec<ScenarioSpec>,
}

/// A campaign-plan parse failure: the line it happened on and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignPlanError {
    /// 1-based line number in the plan text.
    pub line: usize,
    /// What was wrong.
    pub message: String,
}

impl fmt::Display for CampaignPlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "campaign plan line {}: {}", self.line, self.message)
    }
}

impl Error for CampaignPlanError {}

impl From<CampaignPlanError> for NonFifoError {
    fn from(e: CampaignPlanError) -> Self {
        NonFifoError::Usage(e.to_string())
    }
}

fn err(line: usize, message: impl Into<String>) -> CampaignPlanError {
    CampaignPlanError {
        line,
        message: message.into(),
    }
}

/// A scenario being accumulated, with the bookkeeping needed for
/// line-accurate errors on directives that are validated late.
struct Draft {
    opened_at: usize,
    spec: ScenarioSpec,
    /// Fault directives as `(plan line, directive text)`; joined and parsed
    /// when the scenario closes so the fault-plan DSL stays authoritative.
    fault_lines: Vec<(usize, String)>,
}

impl Draft {
    fn finish(self) -> Result<ScenarioSpec, CampaignPlanError> {
        let mut spec = self.spec;
        for (axis, empty) in [
            ("protocols", spec.protocols.is_empty()),
            ("disciplines", spec.disciplines.is_empty()),
            ("messages", spec.message_counts.is_empty()),
        ] {
            if empty {
                return Err(err(
                    self.opened_at,
                    format!("scenario {:?} declares no {axis}", spec.name),
                ));
            }
        }
        if !self.fault_lines.is_empty() {
            let text: Vec<&str> = self.fault_lines.iter().map(|(_, t)| t.as_str()).collect();
            let plan = FaultPlan::parse(&text.join("\n")).map_err(|e| {
                // Map the fault-plan DSL's line back to the campaign file's.
                let line = self.fault_lines[e.line - 1].0;
                err(line, e.message)
            })?;
            spec.fault_plan = Some(plan);
        }
        Ok(spec)
    }
}

impl CampaignPlan {
    /// Parses the plan text format.
    ///
    /// # Errors
    ///
    /// Returns a [`CampaignPlanError`] naming the offending line: unknown
    /// directives, directives before any `scenario` line, unknown protocol
    /// or discipline spellings, malformed numbers or seed ranges, duplicate
    /// scenario names, scenarios with an empty axis, and plans with no
    /// scenario at all.
    pub fn parse(text: &str) -> Result<CampaignPlan, CampaignPlanError> {
        let mut scenarios: Vec<ScenarioSpec> = Vec::new();
        let mut draft: Option<Draft> = None;
        let mut schema_version: Option<u64> = None;
        for (idx, raw) in text.lines().enumerate() {
            let line = idx + 1;
            let content = raw.split('#').next().unwrap_or("").trim();
            if content.is_empty() {
                continue;
            }
            let mut words = content.split_whitespace();
            let verb = words.next().expect("non-empty line has a first word");
            let args: Vec<&str> = words.collect();
            if verb == "schema_version" {
                let [v] = args[..] else {
                    return Err(err(line, "schema_version takes exactly one number"));
                };
                if schema_version.is_some() {
                    return Err(err(line, "duplicate schema_version directive"));
                }
                if draft.is_some() || !scenarios.is_empty() {
                    return Err(err(
                        line,
                        "schema_version must appear before the first scenario",
                    ));
                }
                let v: u64 = v
                    .parse()
                    .map_err(|_| err(line, format!("schema_version: cannot parse {v:?}")))?;
                if v == 0 || v > PLAN_SCHEMA_VERSION {
                    return Err(err(
                        line,
                        format!(
                            "unsupported schema_version {v} (this build reads \
                             ≤ {PLAN_SCHEMA_VERSION})"
                        ),
                    ));
                }
                schema_version = Some(v);
                continue;
            }
            if verb == "scenario" {
                let [name] = args[..] else {
                    return Err(err(line, "scenario takes exactly one name"));
                };
                let taken = scenarios.iter().map(|s| s.name.as_str());
                if taken
                    .chain(draft.iter().map(|d| d.spec.name.as_str()))
                    .any(|n| n == name)
                {
                    return Err(err(line, format!("duplicate scenario name {name:?}")));
                }
                if let Some(done) = draft.take() {
                    scenarios.push(done.finish()?);
                }
                draft = Some(Draft {
                    opened_at: line,
                    spec: ScenarioSpec::new(name),
                    fault_lines: Vec::new(),
                });
                continue;
            }
            let Some(d) = draft.as_mut() else {
                return Err(err(line, format!("`{verb}` before any `scenario` line")));
            };
            match verb {
                "protocols" | "protocol" => {
                    if args.is_empty() {
                        return Err(err(line, "protocols needs at least one name"));
                    }
                    for name in &args {
                        catalog::by_name(name).map_err(|e| err(line, e.to_string()))?;
                        d.spec.protocols.push((*name).to_string());
                    }
                }
                "disciplines" | "discipline" => {
                    if args.is_empty() {
                        return Err(err(line, "disciplines needs at least one spelling"));
                    }
                    for spelling in &args {
                        let parsed: Discipline = spelling
                            .parse()
                            .map_err(|e: nonfifo_channel::DisciplineError| err(line, e.0))?;
                        d.spec.disciplines.push(parsed);
                    }
                }
                "messages" => {
                    if args.is_empty() {
                        return Err(err(line, "messages needs at least one count"));
                    }
                    for n in &args {
                        let n: u64 = n
                            .parse()
                            .map_err(|_| err(line, format!("messages: cannot parse {n:?}")))?;
                        if n == 0 {
                            return Err(err(line, "messages must be at least 1"));
                        }
                        d.spec.message_counts.push(n);
                    }
                }
                "seeds" => {
                    let [range] = args[..] else {
                        return Err(err(line, "seeds takes one value: `A..B` or a single seed"));
                    };
                    d.spec.seeds = parse_seeds(line, range)?;
                }
                "budget" => {
                    let [n] = args[..] else {
                        return Err(err(line, "budget takes one step count"));
                    };
                    let n: u64 = n
                        .parse()
                        .map_err(|_| err(line, format!("budget: cannot parse {n:?}")))?;
                    if n == 0 {
                        return Err(err(line, "budget must be at least 1"));
                    }
                    d.spec.budget = Some(n);
                }
                "payloads" => {
                    if !args.is_empty() {
                        return Err(err(line, "payloads takes no arguments"));
                    }
                    d.spec.payloads = true;
                }
                "corruption" => {
                    let [severity] = args[..] else {
                        return Err(err(
                            line,
                            "corruption takes one severity: light, medium, or heavy",
                        ));
                    };
                    let parsed: CorruptionSeverity = severity
                        .parse()
                        .map_err(|e: SeverityError| err(line, e.to_string()))?;
                    d.spec.corruption = Some(parsed);
                }
                "fault" => {
                    if args.is_empty() {
                        return Err(err(line, "fault needs a fault-plan directive"));
                    }
                    d.fault_lines.push((line, args.join(" ")));
                }
                other => {
                    return Err(err(
                        line,
                        format!(
                            "unknown directive `{other}` (expected schema_version, scenario, \
                             protocols, disciplines, messages, seeds, budget, payloads, \
                             corruption, or fault)"
                        ),
                    ))
                }
            }
        }
        if let Some(done) = draft.take() {
            scenarios.push(done.finish()?);
        }
        if scenarios.is_empty() {
            return Err(err(1, "plan declares no scenario"));
        }
        Ok(CampaignPlan {
            schema_version: schema_version.unwrap_or(1),
            scenarios,
        })
    }

    /// Expands every scenario, concatenated in declaration order.
    pub fn expand(&self) -> Vec<RunSpec> {
        self.scenarios
            .iter()
            .flat_map(ScenarioSpec::expand)
            .collect()
    }
}

fn parse_seeds(line: usize, text: &str) -> Result<std::ops::Range<u64>, CampaignPlanError> {
    if let Some((a, b)) = text.split_once("..") {
        let start: u64 = a
            .parse()
            .map_err(|_| err(line, format!("seeds: cannot parse {a:?}")))?;
        let end: u64 = b
            .parse()
            .map_err(|_| err(line, format!("seeds: cannot parse {b:?}")))?;
        if start >= end {
            return Err(err(line, format!("seeds: empty range {start}..{end}")));
        }
        Ok(start..end)
    } else {
        let seed: u64 = text
            .parse()
            .map_err(|_| err(line, format!("seeds: cannot parse {text:?}")))?;
        Ok(seed..seed + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PLAN: &str = "\
# a smoke matrix
scenario smoke
protocols abp seqnum
disciplines fifo prob:0.3
messages 5 10
seeds 0..2

scenario chaos
protocols window4
disciplines fifo
messages 8
seeds 7
corruption medium
fault dup 0.1
fault drop 0.05
";

    #[test]
    fn parses_scenarios_and_expands_in_order() {
        let plan = CampaignPlan::parse(PLAN).unwrap();
        assert_eq!(plan.scenarios.len(), 2);
        assert_eq!(plan.schema_version, 1, "unversioned plans parse as v1");
        let runs = plan.expand();
        assert_eq!(runs.len(), 2 * 2 * 2 * 2 + 1);
        assert_eq!(runs[0].scenario, "smoke");
        let last = runs.last().unwrap();
        assert_eq!(last.scenario, "chaos");
        assert_eq!(last.seed, 7);
        assert_eq!(last.corruption, Some(CorruptionSeverity::Medium));
        assert!(runs[0].corruption.is_none());
        let faults = last.fault_plan.as_ref().unwrap();
        assert!((faults.dup - 0.1).abs() < 1e-12);
        assert!((faults.drop - 0.05).abs() < 1e-12);
    }

    #[test]
    fn errors_carry_the_offending_line() {
        let cases: &[(&str, usize, &str)] = &[
            ("protocols abp", 1, "before any `scenario`"),
            ("scenario a\nprotocols warbler", 2, "unknown protocol"),
            (
                "scenario a\ndisciplines smoke-signal",
                2,
                "unknown discipline",
            ),
            ("scenario a\nmessages zero", 2, "cannot parse"),
            ("scenario a\nseeds 5..5", 2, "empty range"),
            ("scenario a\ncorruption lethal", 2, "severity"),
            ("scenario a\ncorruption light heavy", 2, "one severity"),
            ("scenario a\nteleport now", 2, "unknown directive"),
            (
                "scenario a\nprotocols abp\ndisciplines fifo\nmessages 5\nfault dup",
                5,
                "dup",
            ),
            ("scenario a\nscenario a", 2, "duplicate"),
            ("", 1, "no scenario"),
            ("schema_version 2", 1, "unsupported schema_version 2"),
            ("schema_version 0", 1, "unsupported schema_version 0"),
            ("schema_version one", 1, "cannot parse"),
            ("schema_version 1 1", 1, "one number"),
            (
                "schema_version 1\nschema_version 1",
                2,
                "duplicate schema_version",
            ),
            (
                "scenario a\nschema_version 1",
                2,
                "before the first scenario",
            ),
        ];
        for (text, line, needle) in cases {
            let e = CampaignPlan::parse(text).unwrap_err();
            assert_eq!(e.line, *line, "{text:?}: {e}");
            assert!(e.to_string().contains(needle), "{text:?}: {e}");
        }
    }

    #[test]
    fn empty_axes_are_rejected_at_the_scenario_line() {
        let e = CampaignPlan::parse("scenario lonely\nprotocols abp").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.to_string().contains("no disciplines"), "{e}");
    }

    #[test]
    fn declared_schema_version_is_recorded() {
        let plan = CampaignPlan::parse(
            "schema_version 1\nscenario s\nprotocols abp\ndisciplines fifo\nmessages 3\n",
        )
        .unwrap();
        assert_eq!(plan.schema_version, 1);
        assert_eq!(plan.expand().len(), 1);
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let plan = CampaignPlan::parse(
            "# header\n\nscenario s # trailing\nprotocols abp\ndisciplines fifo\nmessages 3\n",
        )
        .unwrap();
        assert_eq!(plan.expand().len(), 1);
    }
}
