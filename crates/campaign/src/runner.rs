//! The work-stealing campaign runner and its deterministic report.
//!
//! [`CampaignRunner`] executes an expanded run list on a pool of scoped
//! worker threads. Work is claimed run-at-a-time from a
//! [`ChunkCursor`](nonfifo_adversary::ChunkCursor) (runs vary wildly in
//! cost — a chunk of 1 is the right granularity, unlike the explorer's
//! uniform frontier nodes), and every worker tags its results with the
//! run's index in the input list. Records are merged back in index order,
//! so the rendered report and the aggregate metrics snapshot are
//! **byte-identical at any thread count**: parallelism changes wall-clock
//! time and nothing else.
//!
//! Each run gets a fresh simulation, a fresh telemetry
//! [`Registry`](nonfifo_telemetry::Registry), and a deterministic seed from
//! its spec, so runs are independent and a result can be cached: the
//! [`CampaignCache`] is consulted before the pool spins up, and cached
//! records are indistinguishable from fresh ones in every report artifact.

use crate::cache::{CachedRun, CampaignCache};
use crate::shard::{merge_reports, PlanExpansion, ShardReport};
use crate::spec::RunSpec;
use nonfifo_adversary::ChunkCursor;
use nonfifo_channel::CorruptionSeverity;
use nonfifo_core::experiments::table::{f3, markdown};
use nonfifo_core::{
    corrupted_simulation, drive_corrupted, NonFifoError, SeedVerdict, SimConfig, SimError,
    Simulation, StabilizeConfig,
};
use nonfifo_protocols::{catalog, DataLink};
use nonfifo_telemetry::{MetricsSnapshot, Registry, SCHEMA_VERSION};
use std::fmt;
use std::sync::Arc;

/// How one campaign run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// Every message was delivered within budget.
    Delivered,
    /// A message outran its step budget.
    Stalled,
    /// The online monitor flagged a specification violation.
    Violation,
    /// A corrupted-start run never acquired a legal suffix: the scramble's
    /// damage persisted past the convergence bound.
    Diverged,
}

impl RunOutcome {
    /// Stable text form, used by reports and the cache file.
    pub fn as_str(self) -> &'static str {
        match self {
            RunOutcome::Delivered => "delivered",
            RunOutcome::Stalled => "stalled",
            RunOutcome::Violation => "violation",
            RunOutcome::Diverged => "diverged",
        }
    }

    /// Parses [`as_str`](RunOutcome::as_str) spellings.
    pub fn from_str_opt(s: &str) -> Option<RunOutcome> {
        match s {
            "delivered" => Some(RunOutcome::Delivered),
            "stalled" => Some(RunOutcome::Stalled),
            "violation" => Some(RunOutcome::Violation),
            "diverged" => Some(RunOutcome::Diverged),
            _ => None,
        }
    }
}

impl fmt::Display for RunOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

/// One executed (or cache-replayed) run of a campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRecord {
    /// The spec this record answers.
    pub spec: RunSpec,
    /// How the run ended.
    pub outcome: RunOutcome,
    /// The execution fingerprint (event-stream hash) at the end of the run.
    pub fingerprint: u64,
    /// Scheduler steps taken (at the stall point for stalled runs).
    pub steps: u64,
    /// Forward packets sent, from the engine's own statistics for delivered
    /// runs and the telemetry counter otherwise.
    pub fwd_sends: u64,
    /// Messages delivered.
    pub delivered: u64,
    /// The run's full metrics snapshot (fresh registry per run).
    pub metrics: MetricsSnapshot,
    /// True if this record was replayed from the cache rather than run.
    pub cached: bool,
}

/// The work-stealing scenario-matrix runner.
///
/// # Example
///
/// ```
/// use nonfifo_campaign::{CampaignRunner, ScenarioSpec};
/// use nonfifo_channel::Discipline;
///
/// let runs = ScenarioSpec::new("doc")
///     .protocol("abp")
///     .discipline(Discipline::Fifo)
///     .message_counts(&[5])
///     .expand();
/// let report = CampaignRunner::new(2).run(&runs).unwrap();
/// assert_eq!(report.records.len(), 1);
/// assert!(report.worst().is_none());
/// ```
#[derive(Debug, Clone)]
pub struct CampaignRunner {
    threads: usize,
}

impl CampaignRunner {
    /// A runner with `threads` workers; `0` means one per available core.
    pub fn new(threads: usize) -> Self {
        let threads = if threads == 0 {
            std::thread::available_parallelism().map_or(1, usize::from)
        } else {
            threads
        };
        CampaignRunner { threads }
    }

    /// The worker count this runner will use.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs every spec with no cache.
    ///
    /// # Errors
    ///
    /// Fails fast (before any simulation) on unknown protocol names or
    /// invalid discipline parameters.
    pub fn run(&self, runs: &[RunSpec]) -> Result<CampaignReport, NonFifoError> {
        self.run_with_cache(runs, &mut CampaignCache::new())
    }

    /// Runs every spec, replaying cache hits and inserting fresh results.
    ///
    /// The cache is consulted in a pre-pass, so hits cost no thread and no
    /// simulation; only misses are dispatched to the pool. Records are
    /// merged in input order whatever the interleaving, so the report is
    /// byte-identical to a cold, single-threaded run.
    ///
    /// # Errors
    ///
    /// Fails fast (before any simulation) on unknown protocol names or
    /// invalid discipline parameters.
    pub fn run_with_cache(
        &self,
        runs: &[RunSpec],
        cache: &mut CampaignCache,
    ) -> Result<CampaignReport, NonFifoError> {
        let expansion = PlanExpansion::new(runs.to_vec())?;
        let (cached, to_run) = expansion.partition_cached(cache);
        let part = self.execute(&expansion, &to_run);
        let report = merge_reports(&expansion, cached, vec![part])?;
        for record in report.records.iter().filter(|r| !r.cached) {
            cache.insert(&record.spec, record);
        }
        Ok(report)
    }

    /// The execute stage on this runner's thread pool: runs the given
    /// expansion indices, one claim at a time, and returns them as a
    /// single shard report (records sorted by index, so the report itself
    /// is deterministic, not just its merge).
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range for `expansion`.
    pub fn execute(&self, expansion: &PlanExpansion, indices: &[usize]) -> ShardReport {
        let runs = expansion.runs();
        let workers = self.threads.min(indices.len()).max(1);
        let mut fresh: Vec<(usize, RunRecord)> = if indices.is_empty() {
            Vec::new()
        } else if workers == 1 {
            indices
                .iter()
                .map(|&i| (i, execute_one(&runs[i])))
                .collect()
        } else {
            let cursor = ChunkCursor::new(indices.len(), 1);
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        scope.spawn(|| {
                            let mut mine = Vec::new();
                            while let Some(range) = cursor.claim() {
                                for slot in range {
                                    let i = indices[slot];
                                    mine.push((i, execute_one(&runs[i])));
                                }
                            }
                            mine
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("campaign worker panicked"))
                    .collect()
            })
        };
        fresh.sort_unstable_by_key(|(i, _)| *i);
        ShardReport::from_records(0, &fresh)
    }
}

/// Executes one validated spec on the calling thread.
pub(crate) fn execute_one(spec: &RunSpec) -> RunRecord {
    let proto = catalog::by_name(&spec.protocol).expect("specs are validated before dispatch");
    if let Some(severity) = spec.corruption {
        return execute_corrupted(spec, proto, severity);
    }
    let registry = Arc::new(Registry::new());
    let mut builder = Simulation::builder(proto)
        .channel(spec.discipline.clone())
        .seed(spec.seed);
    if let Some(plan) = &spec.fault_plan {
        builder = builder.fault_plan(plan.clone());
    }
    let mut sim = builder.build();
    sim.attach_telemetry(Arc::clone(&registry), None);
    let cfg = SimConfig {
        max_steps_per_message: spec
            .budget
            .unwrap_or(SimConfig::default().max_steps_per_message),
        payloads: spec.payloads,
        ..SimConfig::default()
    };
    let result = sim.deliver(spec.messages, &cfg);
    let fingerprint = sim.execution_fingerprint();
    let metrics = registry.snapshot();
    let counter = |name: &str| metrics.counters.get(name).copied().unwrap_or(0);
    let (outcome, steps, fwd_sends, delivered) = match &result {
        Ok(stats) => (
            RunOutcome::Delivered,
            stats.steps,
            stats.packets_sent_forward,
            stats.messages_delivered,
        ),
        Err(SimError::Stalled { diagnostic, .. }) => (
            RunOutcome::Stalled,
            diagnostic.at_step,
            counter("chan.fwd.sends"),
            diagnostic.messages_delivered,
        ),
        Err(SimError::Violation(_)) => (
            RunOutcome::Violation,
            0,
            counter("chan.fwd.sends"),
            counter("sim.messages.received"),
        ),
    };
    RunRecord {
        spec: spec.clone(),
        outcome,
        fingerprint,
        steps,
        fwd_sends,
        delivered,
        metrics,
        cached: false,
    }
}

/// Executes one corruption-bearing spec: the run starts from a seeded
/// scramble (scramble seed = run seed) and is judged by convergence
/// instead of clean-start delivery — `Delivered` means the execution
/// acquired a legal suffix after its corrupted prefix. The telemetry
/// registry is attached between building and driving the simulation, so
/// corrupted records carry the same per-run metrics as clean ones (minus
/// the preload events, which land before the registry exists).
fn execute_corrupted(
    spec: &RunSpec,
    proto: Box<dyn DataLink>,
    severity: CorruptionSeverity,
) -> RunRecord {
    let stab_cfg = StabilizeConfig {
        severity,
        discipline: spec.discipline.clone(),
        fault_plan: spec.fault_plan.clone(),
        messages: spec.messages,
        max_steps_per_message: spec
            .budget
            .unwrap_or(StabilizeConfig::default().max_steps_per_message),
        ..StabilizeConfig::default()
    };
    let registry = Arc::new(Registry::new());
    let mut sim = corrupted_simulation(proto, spec.seed, &stab_cfg);
    sim.attach_telemetry(Arc::clone(&registry), None);
    let outcome = drive_corrupted(&mut sim, spec.seed, &stab_cfg);
    // Phantom deliveries from the scramble don't count: only real workload
    // payloads do (junk payloads live at or above 2^40, so no collisions).
    let delivered = (0..spec.messages)
        .filter(|m| sim.delivered_payloads().contains(m))
        .count() as u64;
    let metrics = registry.snapshot();
    RunRecord {
        spec: spec.clone(),
        outcome: match outcome.verdict {
            SeedVerdict::Converged { .. } => RunOutcome::Delivered,
            SeedVerdict::Diverged { .. } => RunOutcome::Diverged,
            SeedVerdict::Stalled => RunOutcome::Stalled,
        },
        fingerprint: outcome.fingerprint,
        steps: outcome.steps,
        fwd_sends: metrics.counters.get("chan.fwd.sends").copied().unwrap_or(0),
        delivered,
        metrics,
        cached: false,
    }
}

impl From<&RunRecord> for CachedRun {
    fn from(r: &RunRecord) -> Self {
        CachedRun {
            outcome: r.outcome,
            fingerprint: r.fingerprint,
            steps: r.steps,
            fwd_sends: r.fwd_sends,
            delivered: r.delivered,
            metrics: r.metrics.clone(),
        }
    }
}

/// The merged result of a campaign, in input-spec order.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignReport {
    /// One record per input spec, in input order.
    pub records: Vec<RunRecord>,
    /// How many records were replayed from the cache.
    pub cache_hits: usize,
}

impl CampaignReport {
    /// Renders the campaign as a markdown table. A pure function of the
    /// run results: byte-identical at any thread count and for any mix of
    /// cached and fresh records.
    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .records
            .iter()
            .map(|r| {
                vec![
                    r.spec.scenario.clone(),
                    r.spec.protocol.clone(),
                    r.spec.discipline.to_string(),
                    r.spec
                        .corruption
                        .map_or_else(|| "-".to_string(), |s| s.to_string()),
                    r.spec.messages.to_string(),
                    r.spec.seed.to_string(),
                    r.outcome.to_string(),
                    r.steps.to_string(),
                    r.fwd_sends.to_string(),
                    f3(if r.delivered == 0 {
                        0.0
                    } else {
                        r.fwd_sends as f64 / r.delivered as f64
                    }),
                    format!("{:016x}", r.fingerprint),
                ]
            })
            .collect();
        markdown(
            &[
                "scenario",
                "protocol",
                "channel",
                "corrupt",
                "n",
                "seed",
                "outcome",
                "steps",
                "fwd sends",
                "cost/msg",
                "fingerprint",
            ],
            &rows,
        )
    }

    /// Merges every run's metrics snapshot, in input order, into one
    /// campaign-wide aggregate, plus the `campaign.runs_total`,
    /// `campaign.cache_hits`, and per-outcome `campaign.runs.*` counters.
    /// Deterministic: the merge order is the input-spec order, not the
    /// completion order.
    pub fn aggregate_metrics(&self) -> MetricsSnapshot {
        let mut agg = MetricsSnapshot {
            schema_version: SCHEMA_VERSION,
            ..MetricsSnapshot::default()
        };
        for record in &self.records {
            agg.merge_from(&record.metrics);
        }
        agg.counters
            .insert("campaign.runs_total".to_string(), self.records.len() as u64);
        agg.counters
            .insert("campaign.cache_hits".to_string(), self.cache_hits as u64);
        for outcome in [
            RunOutcome::Delivered,
            RunOutcome::Stalled,
            RunOutcome::Violation,
            RunOutcome::Diverged,
        ] {
            let count = self.count(outcome) as u64;
            agg.counters
                .insert(format!("campaign.runs.{outcome}"), count);
        }
        agg
    }

    /// Number of runs that ended with `outcome`.
    pub fn count(&self, outcome: RunOutcome) -> usize {
        self.records.iter().filter(|r| r.outcome == outcome).count()
    }

    /// The campaign-level error for the exit-code contract, if any run
    /// failed: violations dominate stalls. A corrupted-start run that
    /// diverged counts as a violation — failing to recover is a spec
    /// failure, not a liveness one.
    pub fn worst(&self) -> Option<NonFifoError> {
        let violations =
            (self.count(RunOutcome::Violation) + self.count(RunOutcome::Diverged)) as u64;
        let stalls = self.count(RunOutcome::Stalled) as u64;
        if violations == 0 && stalls == 0 {
            None
        } else {
            Some(NonFifoError::CampaignFailed { violations, stalls })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ScenarioSpec;
    use nonfifo_channel::{Discipline, FaultPlan};

    fn matrix() -> Vec<RunSpec> {
        ScenarioSpec::new("t")
            .protocol("abp")
            .protocol("seqnum")
            .discipline(Discipline::Fifo)
            .discipline(Discipline::Probabilistic { q: 0.3 })
            .message_counts(&[5, 10])
            .seeds(0..3)
            .expand()
    }

    #[test]
    fn report_and_aggregate_are_thread_count_invariant() {
        let runs = matrix();
        let base = CampaignRunner::new(1).run(&runs).unwrap();
        for threads in [2, 8] {
            let other = CampaignRunner::new(threads).run(&runs).unwrap();
            assert_eq!(base.render(), other.render(), "{threads} threads");
            assert_eq!(
                base.aggregate_metrics().to_json(),
                other.aggregate_metrics().to_json(),
                "{threads} threads"
            );
        }
    }

    #[test]
    fn cache_replay_is_transparent_and_total() {
        let runs = matrix();
        let mut cache = CampaignCache::new();
        let cold = CampaignRunner::new(2)
            .run_with_cache(&runs, &mut cache)
            .unwrap();
        assert_eq!(cold.cache_hits, 0);
        assert_eq!(cache.len(), runs.len());
        let warm = CampaignRunner::new(2)
            .run_with_cache(&runs, &mut cache)
            .unwrap();
        assert_eq!(warm.cache_hits, runs.len());
        assert!(warm.records.iter().all(|r| r.cached));
        assert_eq!(cold.render(), warm.render());
        // The only aggregate difference a warm cache makes is the hit counter.
        let mut cold_agg = cold.aggregate_metrics();
        cold_agg
            .counters
            .insert("campaign.cache_hits".to_string(), runs.len() as u64);
        assert_eq!(cold_agg, warm.aggregate_metrics());
    }

    #[test]
    fn failing_runs_surface_through_worst() {
        // The alternating bit falls over a bounded-reorder channel.
        let runs = ScenarioSpec::new("break")
            .protocol("abp")
            .discipline(Discipline::BoundedReorder { bound: 4 })
            .message_counts(&[20])
            .seeds(0..4)
            .expand();
        let report = CampaignRunner::new(2).run(&runs).unwrap();
        let failed = report.count(RunOutcome::Violation) + report.count(RunOutcome::Stalled);
        assert!(failed > 0, "expected at least one failing seed");
        match report.worst() {
            Some(NonFifoError::CampaignFailed { violations, stalls }) => {
                assert_eq!(violations + stalls, failed as u64);
            }
            other => panic!("expected CampaignFailed, got {other:?}"),
        }
    }

    #[test]
    fn corrupted_scenarios_certify_stabilizing_and_flag_trusting_protocols() {
        let runs = ScenarioSpec::new("stab")
            .protocol("stabilizing-dl")
            .discipline(Discipline::Probabilistic { q: 0.2 })
            .message_counts(&[4])
            .seeds(0..6)
            .corruption(CorruptionSeverity::Medium)
            .expand();
        let report = CampaignRunner::new(2).run(&runs).unwrap();
        assert_eq!(report.count(RunOutcome::Delivered), runs.len());
        assert!(report.worst().is_none());

        let naive = ScenarioSpec::new("naive")
            .protocol("cycle3")
            .discipline(Discipline::Probabilistic { q: 0.2 })
            .message_counts(&[4])
            .seeds(0..6)
            .corruption(CorruptionSeverity::Medium)
            .expand();
        let report = CampaignRunner::new(2).run(&naive).unwrap();
        let failed = report.count(RunOutcome::Diverged) + report.count(RunOutcome::Stalled);
        assert!(failed > 0, "cycle3 must not survive corrupted starts");
        match report.worst() {
            Some(NonFifoError::CampaignFailed { violations, stalls }) => {
                assert_eq!(
                    violations + stalls,
                    failed as u64,
                    "diverged runs count as violations"
                );
            }
            other => panic!("expected CampaignFailed, got {other:?}"),
        }
    }

    #[test]
    fn corrupted_runs_replay_from_the_cache_byte_identically() {
        let runs = ScenarioSpec::new("stab")
            .protocol("stabilizing-dl")
            .discipline(Discipline::Probabilistic { q: 0.2 })
            .message_counts(&[4])
            .seeds(0..3)
            .corruption(CorruptionSeverity::Heavy)
            .fault_plan(FaultPlan::parse("dup 0.1").unwrap())
            .expand();
        let mut cache = CampaignCache::new();
        let cold = CampaignRunner::new(1)
            .run_with_cache(&runs, &mut cache)
            .unwrap();
        let reloaded = CampaignCache::from_json(&cache.to_json()).unwrap();
        let mut warm_cache = reloaded;
        let warm = CampaignRunner::new(8)
            .run_with_cache(&runs, &mut warm_cache)
            .unwrap();
        assert_eq!(warm.cache_hits, runs.len());
        assert_eq!(cold.render(), warm.render());
    }

    #[test]
    fn unknown_protocols_fail_fast() {
        let mut runs = matrix();
        runs[3].protocol = "warbler".to_string();
        let err = CampaignRunner::new(2).run(&runs).unwrap_err();
        assert!(err.to_string().contains("warbler"), "{err}");
    }

    #[test]
    fn aggregate_counts_runs_and_outcomes() {
        let runs = matrix();
        let report = CampaignRunner::new(2).run(&runs).unwrap();
        let agg = report.aggregate_metrics();
        assert_eq!(agg.counters["campaign.runs_total"], runs.len() as u64);
        assert_eq!(
            agg.counters["campaign.runs.delivered"]
                + agg.counters["campaign.runs.stalled"]
                + agg.counters["campaign.runs.violation"]
                + agg.counters["campaign.runs.diverged"],
            runs.len() as u64
        );
        // Per-run channel counters accumulated across the whole matrix.
        assert!(agg.counters["chan.fwd.sends"] > 0);
    }
}
