//! Fingerprint-keyed campaign result cache.
//!
//! Every [`RunSpec`](crate::RunSpec) has a canonical spelling whose FNV-64
//! hash keys its result. The cache stores everything a
//! [`RunRecord`](crate::RunRecord) renders or aggregates — outcome,
//! execution fingerprint, engine statistics, and the full per-run metrics
//! snapshot — so a cache replay is indistinguishable from a fresh run in
//! every campaign artifact. Runs are deterministic functions of their
//! specs, which is what makes caching sound at all.
//!
//! The on-disk form is the workspace's hand-rolled JSON, with a schema
//! version for forward compatibility; a missing cache file loads as an
//! empty cache (the natural first-run experience for `--cache`).

use crate::runner::{RunOutcome, RunRecord};
use crate::spec::RunSpec;
use nonfifo_core::NonFifoError;
use nonfifo_telemetry::{Json, MetricsSnapshot};
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;
use std::sync::{Arc, RwLock};

/// Version stamp of the cache file schema.
pub const CACHE_SCHEMA_VERSION: u64 = 1;

/// The cached portion of a run record: everything except the spec (which
/// the lookup key already proves) and the `cached` marker.
#[derive(Debug, Clone, PartialEq)]
pub struct CachedRun {
    /// How the run ended.
    pub outcome: RunOutcome,
    /// Execution fingerprint at the end of the run.
    pub fingerprint: u64,
    /// Scheduler steps taken.
    pub steps: u64,
    /// Forward packets sent.
    pub fwd_sends: u64,
    /// Messages delivered.
    pub delivered: u64,
    /// The run's full metrics snapshot.
    pub metrics: MetricsSnapshot,
}

impl CachedRun {
    /// The run as a [`Json`] object. This is the one serialization of a
    /// completed run in the workspace: the cache file embeds it per entry
    /// and the service wire protocol ships it per `run` message, so the
    /// two layers cannot drift apart.
    pub fn to_json_value(&self) -> Json {
        Json::Obj(vec![
            (
                "outcome".to_string(),
                Json::Str(self.outcome.as_str().to_string()),
            ),
            ("fingerprint".to_string(), Json::Uint(self.fingerprint)),
            ("steps".to_string(), Json::Uint(self.steps)),
            ("fwd_sends".to_string(), Json::Uint(self.fwd_sends)),
            ("delivered".to_string(), Json::Uint(self.delivered)),
            ("metrics".to_string(), self.metrics.to_json_value()),
        ])
    }

    /// Parses a value written by [`to_json_value`](CachedRun::to_json_value).
    ///
    /// # Errors
    ///
    /// Rejects objects with missing or mistyped fields.
    pub fn from_json_value(entry: &Json) -> Result<CachedRun, CacheError> {
        let field = |name: &str| {
            entry
                .get(name)
                .and_then(Json::as_u64)
                .ok_or_else(|| CacheError(format!("entry missing field {name:?}")))
        };
        let outcome = entry
            .get("outcome")
            .and_then(Json::as_str)
            .and_then(RunOutcome::from_str_opt)
            .ok_or_else(|| CacheError("entry has no valid outcome".to_string()))?;
        let metrics = entry
            .get("metrics")
            .ok_or_else(|| CacheError("entry missing field \"metrics\"".to_string()))
            .and_then(|m| {
                MetricsSnapshot::from_json_value(m).map_err(|e| CacheError(e.to_string()))
            })?;
        Ok(CachedRun {
            outcome,
            fingerprint: field("fingerprint")?,
            steps: field("steps")?,
            fwd_sends: field("fwd_sends")?,
            delivered: field("delivered")?,
            metrics,
        })
    }
}

/// Why a cache document was rejected.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheError(pub String);

impl fmt::Display for CacheError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "campaign cache: {}", self.0)
    }
}

impl Error for CacheError {}

impl From<CacheError> for NonFifoError {
    fn from(e: CacheError) -> Self {
        NonFifoError::Usage(e.to_string())
    }
}

/// A fingerprint-keyed store of completed campaign runs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CampaignCache {
    entries: BTreeMap<u64, CachedRun>,
}

impl CampaignCache {
    /// An empty cache.
    pub fn new() -> Self {
        CampaignCache::default()
    }

    /// Number of cached runs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Replays the cached result for `spec`, if present, as a full record
    /// marked `cached`.
    pub fn lookup(&self, spec: &RunSpec) -> Option<RunRecord> {
        let hit = self.entries.get(&spec.fingerprint())?;
        Some(RunRecord {
            spec: spec.clone(),
            outcome: hit.outcome,
            fingerprint: hit.fingerprint,
            steps: hit.steps,
            fwd_sends: hit.fwd_sends,
            delivered: hit.delivered,
            metrics: hit.metrics.clone(),
            cached: true,
        })
    }

    /// Stores `record` under `spec`'s key.
    pub fn insert(&mut self, spec: &RunSpec, record: &RunRecord) {
        self.entries.insert(spec.fingerprint(), record.into());
    }

    /// Serializes the cache as a compact JSON document.
    pub fn to_json(&self) -> String {
        let entries: Vec<Json> = self
            .entries
            .iter()
            .map(|(&key, run)| {
                let mut fields = vec![("key".to_string(), Json::Uint(key))];
                match run.to_json_value() {
                    Json::Obj(rest) => fields.extend(rest),
                    _ => unreachable!("CachedRun serializes as an object"),
                }
                Json::Obj(fields)
            })
            .collect();
        Json::Obj(vec![
            (
                "schema_version".to_string(),
                Json::Uint(CACHE_SCHEMA_VERSION),
            ),
            ("entries".to_string(), Json::Arr(entries)),
        ])
        .to_string()
    }

    /// Parses a document produced by [`to_json`](CampaignCache::to_json).
    ///
    /// # Errors
    ///
    /// Rejects invalid JSON, unknown schema versions, and entries with
    /// missing or mistyped fields.
    pub fn from_json(text: &str) -> Result<CampaignCache, CacheError> {
        let doc = Json::parse(text).map_err(|e| CacheError(e.to_string()))?;
        let version = doc
            .get("schema_version")
            .and_then(Json::as_u64)
            .ok_or_else(|| CacheError("missing schema_version".to_string()))?;
        if version != CACHE_SCHEMA_VERSION {
            return Err(CacheError(format!(
                "unsupported schema_version {version} (expected {CACHE_SCHEMA_VERSION})"
            )));
        }
        let entries = doc
            .get("entries")
            .and_then(Json::as_arr)
            .ok_or_else(|| CacheError("missing entries array".to_string()))?;
        let mut cache = CampaignCache::new();
        for entry in entries {
            let key = entry
                .get("key")
                .and_then(Json::as_u64)
                .ok_or_else(|| CacheError("entry missing field \"key\"".to_string()))?;
            cache
                .entries
                .insert(key, CachedRun::from_json_value(entry)?);
        }
        Ok(cache)
    }

    /// Loads a cache file; a missing file is an empty cache.
    ///
    /// # Errors
    ///
    /// Fails on unreadable files and on files that exist but do not parse.
    pub fn load(path: &str) -> Result<CampaignCache, NonFifoError> {
        match std::fs::read_to_string(path) {
            Ok(text) => Ok(CampaignCache::from_json(&text)?),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(CampaignCache::new()),
            Err(e) => Err(NonFifoError::io(path, &e)),
        }
    }

    /// Writes the cache file.
    ///
    /// # Errors
    ///
    /// Fails if the file cannot be written.
    pub fn save(&self, path: &str) -> Result<(), NonFifoError> {
        std::fs::write(path, self.to_json()).map_err(|e| NonFifoError::io(path, &e))
    }
}

/// A [`CampaignCache`] behind a reader–writer lock: the campaign service's
/// shared persistent store. Many in-flight campaigns consult the cache
/// concurrently (lookups take the read lock); completed runs and file
/// persistence take the write lock. Cloning shares the store.
#[derive(Debug, Clone, Default)]
pub struct SharedCache {
    inner: Arc<RwLock<CampaignCache>>,
}

impl SharedCache {
    /// An empty shared cache.
    pub fn new() -> Self {
        SharedCache::default()
    }

    /// Wraps an already-populated cache.
    pub fn from_cache(cache: CampaignCache) -> Self {
        SharedCache {
            inner: Arc::new(RwLock::new(cache)),
        }
    }

    /// Loads a cache file; a missing file is an empty cache.
    ///
    /// # Errors
    ///
    /// Fails on unreadable files and on files that exist but do not parse.
    pub fn load(path: &str) -> Result<SharedCache, NonFifoError> {
        Ok(SharedCache::from_cache(CampaignCache::load(path)?))
    }

    /// Replays the cached result for `spec` under the read lock.
    pub fn lookup(&self, spec: &RunSpec) -> Option<RunRecord> {
        self.inner.read().expect("cache lock poisoned").lookup(spec)
    }

    /// Number of cached runs.
    pub fn len(&self) -> usize {
        self.inner.read().expect("cache lock poisoned").len()
    }

    /// True if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Stores a batch of fresh records under one write-lock acquisition.
    pub fn insert_all<'a>(&self, records: impl IntoIterator<Item = (&'a RunSpec, &'a RunRecord)>) {
        let mut cache = self.inner.write().expect("cache lock poisoned");
        for (spec, record) in records {
            cache.insert(spec, record);
        }
    }

    /// Writes the cache file (read lock only — serialization does not
    /// mutate the store).
    ///
    /// # Errors
    ///
    /// Fails if the file cannot be written.
    pub fn save(&self, path: &str) -> Result<(), NonFifoError> {
        self.inner.read().expect("cache lock poisoned").save(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::CampaignRunner;
    use crate::spec::ScenarioSpec;
    use nonfifo_channel::Discipline;

    fn populated() -> (Vec<RunSpec>, CampaignCache) {
        let runs = ScenarioSpec::new("t")
            .protocol("abp")
            .discipline(Discipline::Probabilistic { q: 0.3 })
            .message_counts(&[5, 10])
            .seeds(0..2)
            .expand();
        let mut cache = CampaignCache::new();
        CampaignRunner::new(1)
            .run_with_cache(&runs, &mut cache)
            .unwrap();
        (runs, cache)
    }

    #[test]
    fn json_round_trips_exactly() {
        let (runs, cache) = populated();
        let text = cache.to_json();
        let reloaded = CampaignCache::from_json(&text).unwrap();
        assert_eq!(cache, reloaded);
        for spec in &runs {
            let a = cache.lookup(spec).unwrap();
            let b = reloaded.lookup(spec).unwrap();
            assert_eq!(a, b);
            assert!(a.cached);
        }
    }

    #[test]
    fn bad_documents_are_rejected_with_reasons() {
        for (text, needle) in [
            ("{", "json"),
            ("{}", "schema_version"),
            ("{\"schema_version\":99,\"entries\":[]}", "unsupported"),
            ("{\"schema_version\":1}", "entries"),
            (
                "{\"schema_version\":1,\"entries\":[{\"key\":1}]}",
                "outcome",
            ),
        ] {
            let err = CampaignCache::from_json(text).unwrap_err();
            assert!(
                err.to_string().to_lowercase().contains(needle),
                "{text}: {err}"
            );
        }
    }

    #[test]
    fn missing_file_loads_empty() {
        let cache = CampaignCache::load("/nonexistent/campaign.cache.json").unwrap();
        assert!(cache.is_empty());
    }

    #[test]
    fn cached_run_value_round_trips() {
        let (runs, cache) = populated();
        for spec in &runs {
            let record = cache.lookup(spec).unwrap();
            let run = CachedRun::from(&record);
            let back = CachedRun::from_json_value(&run.to_json_value()).unwrap();
            assert_eq!(back, run);
        }
    }

    #[test]
    fn shared_cache_reads_concurrently_and_shares_inserts() {
        let (runs, cache) = populated();
        let shared = SharedCache::from_cache(cache);
        let clone = shared.clone();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| scope.spawn(|| runs.iter().all(|spec| shared.lookup(spec).is_some())))
                .collect();
            for h in handles {
                assert!(h.join().unwrap(), "a reader missed a cached run");
            }
        });
        // Inserts through one handle are visible through the clone.
        let extra = ScenarioSpec::new("extra")
            .protocol("abp")
            .discipline(Discipline::Fifo)
            .message_counts(&[3])
            .expand();
        let record = CampaignRunner::new(1).run(&extra).unwrap().records[0].clone();
        shared.insert_all([(&extra[0], &record)]);
        assert!(clone.lookup(&extra[0]).is_some());
        assert_eq!(clone.len(), runs.len() + 1);
    }
}
