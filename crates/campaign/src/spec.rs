//! Declarative run matrices: [`ScenarioSpec`] and its expansion into
//! individually fingerprinted [`RunSpec`]s.
//!
//! A scenario is a cross product: every named protocol × every channel
//! discipline × every message count × every seed, sharing one optional
//! fault plan and one step budget. Expansion is deterministic (protocol
//! order, then discipline, then message count, then seed — exactly as the
//! axes were declared), and every expanded run carries a stable canonical
//! spelling whose FNV-64 hash keys the campaign result cache.

use nonfifo_channel::{CorruptionSeverity, Discipline, FaultPlan};
use nonfifo_ioa::fingerprint::fnv64;
use std::fmt;

/// One axis-product of runs: the unit of declaration in a campaign plan.
///
/// # Example
///
/// ```
/// use nonfifo_campaign::ScenarioSpec;
/// use nonfifo_channel::Discipline;
///
/// let runs = ScenarioSpec::new("smoke")
///     .protocol("abp")
///     .protocol("seqnum")
///     .discipline(Discipline::Fifo)
///     .discipline(Discipline::Probabilistic { q: 0.3 })
///     .message_counts(&[10, 20])
///     .seeds(0..3)
///     .expand();
/// assert_eq!(runs.len(), 2 * 2 * 2 * 3);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Scenario name, echoed into every expanded run and report row.
    pub name: String,
    /// Protocol names, resolved via `nonfifo_protocols::catalog`.
    pub protocols: Vec<String>,
    /// Channel disciplines to cross with the protocols.
    pub disciplines: Vec<Discipline>,
    /// Message counts (`n`) to deliver per run.
    pub message_counts: Vec<u64>,
    /// Seed range, half-open.
    pub seeds: std::ops::Range<u64>,
    /// Optional fault plan wrapped around every run's channel pair.
    pub fault_plan: Option<FaultPlan>,
    /// Optional override of `SimConfig::max_steps_per_message`.
    pub budget: Option<u64>,
    /// Stamp messages with their index as payload.
    pub payloads: bool,
    /// Optional initial-state corruption: every run starts from a seeded
    /// scramble of this severity and is judged by convergence instead of
    /// clean-start delivery.
    pub corruption: Option<CorruptionSeverity>,
}

impl ScenarioSpec {
    /// A scenario with empty axes and a single seed (`0..1`).
    pub fn new(name: impl Into<String>) -> Self {
        ScenarioSpec {
            name: name.into(),
            protocols: Vec::new(),
            disciplines: Vec::new(),
            message_counts: Vec::new(),
            seeds: 0..1,
            fault_plan: None,
            budget: None,
            payloads: false,
            corruption: None,
        }
    }

    /// Adds a protocol to the protocol axis.
    #[must_use]
    pub fn protocol(mut self, name: impl Into<String>) -> Self {
        self.protocols.push(name.into());
        self
    }

    /// Adds a discipline to the channel axis.
    #[must_use]
    pub fn discipline(mut self, d: Discipline) -> Self {
        self.disciplines.push(d);
        self
    }

    /// Sets the message-count axis.
    #[must_use]
    pub fn message_counts(mut self, counts: &[u64]) -> Self {
        self.message_counts = counts.to_vec();
        self
    }

    /// Sets the seed range.
    #[must_use]
    pub fn seeds(mut self, seeds: std::ops::Range<u64>) -> Self {
        self.seeds = seeds;
        self
    }

    /// Attaches a fault plan to every run of the scenario.
    #[must_use]
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Overrides the per-message step budget for every run.
    #[must_use]
    pub fn budget(mut self, max_steps_per_message: u64) -> Self {
        self.budget = Some(max_steps_per_message);
        self
    }

    /// Enables payload stamping for every run.
    #[must_use]
    pub fn payloads(mut self, on: bool) -> Self {
        self.payloads = on;
        self
    }

    /// Starts every run from a seeded corrupted initial state of the given
    /// severity. Corrupted runs are judged by convergence — the outcome is
    /// `Delivered` only if the execution acquired a legal suffix — and the
    /// scramble is derived from the run seed, so the initial-corruption
    /// axis crosses with fault plans and stays cacheable.
    #[must_use]
    pub fn corruption(mut self, severity: CorruptionSeverity) -> Self {
        self.corruption = Some(severity);
        self
    }

    /// Expands the cross product in declaration order: protocol, then
    /// discipline, then message count, then seed.
    pub fn expand(&self) -> Vec<RunSpec> {
        let mut runs = Vec::new();
        for proto in &self.protocols {
            for d in &self.disciplines {
                for &n in &self.message_counts {
                    for seed in self.seeds.clone() {
                        runs.push(RunSpec {
                            scenario: self.name.clone(),
                            protocol: proto.clone(),
                            discipline: d.clone(),
                            messages: n,
                            seed,
                            fault_plan: self.fault_plan.clone(),
                            budget: self.budget,
                            payloads: self.payloads,
                            corruption: self.corruption,
                        });
                    }
                }
            }
        }
        runs
    }
}

/// One fully concrete simulation run: a point of the scenario matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSpec {
    /// Name of the scenario this run expanded from.
    pub scenario: String,
    /// Protocol name (catalog spelling).
    pub protocol: String,
    /// Channel discipline.
    pub discipline: Discipline,
    /// Messages to deliver.
    pub messages: u64,
    /// RNG seed handed to the channel pair.
    pub seed: u64,
    /// Fault plan, if the scenario injects faults.
    pub fault_plan: Option<FaultPlan>,
    /// `SimConfig::max_steps_per_message` override.
    pub budget: Option<u64>,
    /// Payload stamping.
    pub payloads: bool,
    /// Initial-state corruption severity, if the scenario starts corrupted.
    pub corruption: Option<CorruptionSeverity>,
}

impl RunSpec {
    /// The canonical one-line spelling of this run. Stable across
    /// processes; the cache key is its hash. Fault plans are folded in via
    /// their canonical plan text ([`FaultPlan`]'s `Display`), so two specs
    /// collide exactly when they describe the same run.
    pub fn canonical(&self) -> String {
        let mut s = format!(
            "scenario={} proto={} chan={} n={} seed={}",
            self.scenario, self.protocol, self.discipline, self.messages, self.seed
        );
        if let Some(budget) = self.budget {
            s.push_str(&format!(" budget={budget}"));
        }
        if self.payloads {
            s.push_str(" payloads");
        }
        if let Some(severity) = self.corruption {
            s.push_str(&format!(" corrupt={severity}"));
        }
        if let Some(plan) = &self.fault_plan {
            // Canonical plan text is multi-line; flatten it.
            let flat: Vec<String> = plan.to_string().lines().map(str::to_string).collect();
            s.push_str(&format!(" faults=[{}]", flat.join("; ")));
        }
        s
    }

    /// FNV-64 hash of [`canonical`](RunSpec::canonical): the cache key.
    pub fn fingerprint(&self) -> u64 {
        fnv64(self.canonical().as_str())
    }
}

impl fmt::Display for RunSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.canonical())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ScenarioSpec {
        ScenarioSpec::new("t")
            .protocol("abp")
            .discipline(Discipline::Probabilistic { q: 0.3 })
            .message_counts(&[5])
            .seeds(3..5)
    }

    #[test]
    fn expansion_order_is_declaration_order() {
        let runs = ScenarioSpec::new("t")
            .protocol("abp")
            .protocol("seqnum")
            .discipline(Discipline::Fifo)
            .discipline(Discipline::BoundedReorder { bound: 2 })
            .message_counts(&[5, 10])
            .seeds(0..2)
            .expand();
        assert_eq!(runs.len(), 16);
        assert_eq!(
            runs[0].canonical(),
            "scenario=t proto=abp chan=fifo n=5 seed=0"
        );
        assert_eq!(runs[1].seed, 1);
        assert_eq!(runs[2].messages, 10);
        assert_eq!(runs[4].discipline, Discipline::BoundedReorder { bound: 2 });
        assert_eq!(runs[8].protocol, "seqnum");
    }

    #[test]
    fn fingerprints_separate_all_axes() {
        let base = spec().expand();
        let budgeted = spec().budget(99).expand();
        let faulted = spec()
            .fault_plan(FaultPlan::parse("dup 0.1").unwrap())
            .expand();
        let payloaded = spec().payloads(true).expand();
        let corrupted = spec().corruption(CorruptionSeverity::Medium).expand();
        let heavier = spec().corruption(CorruptionSeverity::Heavy).expand();
        let fps: Vec<u64> = [
            &base[0],
            &base[1],
            &budgeted[0],
            &faulted[0],
            &payloaded[0],
            &corrupted[0],
            &heavier[0],
        ]
        .iter()
        .map(|r| r.fingerprint())
        .collect();
        for i in 0..fps.len() {
            for j in i + 1..fps.len() {
                assert_ne!(fps[i], fps[j], "{i} vs {j} collide");
            }
        }
        // Stable: same spec, same key.
        assert_eq!(base[0].fingerprint(), spec().expand()[0].fingerprint());
    }

    #[test]
    fn canonical_spells_out_the_corruption_severity() {
        let runs = spec().corruption(CorruptionSeverity::Light).expand();
        let c = runs[0].canonical();
        assert!(c.contains(" corrupt=light"), "{c}");
    }

    #[test]
    fn canonical_folds_in_the_fault_plan() {
        let runs = spec()
            .fault_plan(FaultPlan::parse("dup 0.1\ndrop 0.2").unwrap())
            .expand();
        let c = runs[0].canonical();
        assert!(c.contains("faults=[dup 0.1; drop 0.2]"), "{c}");
    }
}
