//! The campaign service wire protocol: one line-framed JSON schema shared
//! by the worker stdin/stdout pipe and the HTTP front end.
//!
//! Every message is a single JSON object on one line (newline-delimited
//! JSON), built with the hand-rolled [`Json`] value from
//! `nonfifo-telemetry` — insertion-ordered objects, exact integer
//! variants — so encodings are byte-stable and diffable like every other
//! artifact in this repo. Every message carries a `"v"` schema field with
//! the same forward-compat contract as the cache file and
//! [`MetricsSnapshot`]: a reader rejects versions newer than it knows
//! rather than guessing.
//!
//! The conversation shapes:
//!
//! - client → daemon: [`WireMsg::Submit`] (a plan document plus a worker
//!   count), answered by a stream of `Run`/`Metrics` deltas and one final
//!   [`WireMsg::Report`] (or [`WireMsg::Error`]).
//! - daemon → worker: one [`WireMsg::Shard`] on stdin; worker → daemon:
//!   one [`WireMsg::Run`] per completed run on stdout, in index order.
//!
//! A run travels as its [`CachedRun`] — the same serialization the cache
//! file uses — addressed by expansion index and spec fingerprint so the
//! receiver can merge it with [`merge_reports`](crate::merge_reports)'
//! fingerprint check.

use crate::cache::CachedRun;
use crate::shard::{ShardRecord, ShardSpec};
use nonfifo_telemetry::{Json, MetricsSnapshot};
use std::fmt;

/// Version of the wire encoding this build speaks.
pub const WIRE_SCHEMA_VERSION: u64 = 1;

/// A malformed, unsupported, or out-of-protocol wire line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// What was wrong with the line.
    pub message: String,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wire: {}", self.message)
    }
}

impl std::error::Error for WireError {}

fn wire_err(message: impl Into<String>) -> WireError {
    WireError {
        message: message.into(),
    }
}

/// One message of the campaign service protocol.
#[derive(Debug, Clone, PartialEq)]
pub enum WireMsg {
    /// Client → daemon: run this plan, sharded across `workers` worker
    /// processes (`0` = the daemon's configured default).
    Submit {
        /// The campaign plan document, verbatim.
        plan: String,
        /// Requested worker-process count.
        workers: u64,
    },
    /// Daemon → worker: your slice of the plan. The worker re-expands the
    /// plan text locally (expansion is deterministic) and runs `indices`.
    Shard {
        /// The campaign plan document, verbatim.
        plan: String,
        /// This shard's position in the partition.
        shard: u64,
        /// Total shards in the partition.
        of: u64,
        /// Expansion indices assigned to this shard, ascending.
        indices: Vec<u64>,
    },
    /// One completed run, streamed as it lands.
    Run {
        /// Index into the plan expansion.
        index: u64,
        /// [`RunSpec::fingerprint`](crate::RunSpec::fingerprint) of the
        /// spec this record answers — checked at merge.
        spec_fingerprint: u64,
        /// The run result, in the cache file's serialization.
        run: CachedRun,
    },
    /// A per-shard metrics delta: the merged snapshots of one shard's
    /// completed runs. Shard deltas are disjoint slices of the campaign,
    /// and [`MetricsSnapshot::merge_from`] accumulates counters and
    /// histograms, so merging every delta reproduces the per-run metrics
    /// portion of the final aggregate whatever order deltas arrive in.
    Metrics {
        /// Which shard this delta summarizes.
        shard: u64,
        /// Merged snapshot of the shard's runs, in index order.
        snapshot: MetricsSnapshot,
    },
    /// Daemon → client: the campaign's final merged result.
    Report {
        /// The rendered markdown table, byte-identical to batch output.
        render: String,
        /// Records replayed from the daemon's shared cache.
        cache_hits: u64,
        /// The campaign-wide aggregate snapshot, byte-identical to batch.
        aggregate: MetricsSnapshot,
    },
    /// Either direction: the conversation failed; `message` says why.
    Error {
        /// Human-readable failure description.
        message: String,
    },
}

impl WireMsg {
    /// The message's `"type"` tag.
    pub fn kind(&self) -> &'static str {
        match self {
            WireMsg::Submit { .. } => "submit",
            WireMsg::Shard { .. } => "shard",
            WireMsg::Run { .. } => "run",
            WireMsg::Metrics { .. } => "metrics",
            WireMsg::Report { .. } => "report",
            WireMsg::Error { .. } => "error",
        }
    }

    /// Encodes the message as a [`Json`] object (versioned, type-tagged).
    pub fn to_json_value(&self) -> Json {
        let mut fields = vec![
            ("v".to_string(), Json::Uint(WIRE_SCHEMA_VERSION)),
            ("type".to_string(), Json::Str(self.kind().to_string())),
        ];
        match self {
            WireMsg::Submit { plan, workers } => {
                fields.push(("plan".to_string(), Json::Str(plan.clone())));
                fields.push(("workers".to_string(), Json::Uint(*workers)));
            }
            WireMsg::Shard {
                plan,
                shard,
                of,
                indices,
            } => {
                fields.push(("plan".to_string(), Json::Str(plan.clone())));
                fields.push(("shard".to_string(), Json::Uint(*shard)));
                fields.push(("of".to_string(), Json::Uint(*of)));
                fields.push((
                    "indices".to_string(),
                    Json::Arr(indices.iter().map(|&i| Json::Uint(i)).collect()),
                ));
            }
            WireMsg::Run {
                index,
                spec_fingerprint,
                run,
            } => {
                fields.push(("index".to_string(), Json::Uint(*index)));
                fields.push(("spec".to_string(), Json::Uint(*spec_fingerprint)));
                fields.push(("run".to_string(), run.to_json_value()));
            }
            WireMsg::Metrics { shard, snapshot } => {
                fields.push(("shard".to_string(), Json::Uint(*shard)));
                fields.push(("snapshot".to_string(), snapshot.to_json_value()));
            }
            WireMsg::Report {
                render,
                cache_hits,
                aggregate,
            } => {
                fields.push(("render".to_string(), Json::Str(render.clone())));
                fields.push(("cache_hits".to_string(), Json::Uint(*cache_hits)));
                fields.push(("aggregate".to_string(), aggregate.to_json_value()));
            }
            WireMsg::Error { message } => {
                fields.push(("message".to_string(), Json::Str(message.clone())));
            }
        }
        Json::Obj(fields)
    }

    /// Encodes the message as one newline-terminated NDJSON line. JSON
    /// string escaping keeps embedded newlines (plan documents, rendered
    /// tables) on the one line.
    pub fn to_line(&self) -> String {
        format!("{}\n", self.to_json_value())
    }

    /// Decodes a [`Json`] object produced by
    /// [`to_json_value`](WireMsg::to_json_value).
    ///
    /// # Errors
    ///
    /// Fails on non-objects, missing or mistyped fields, unknown `type`
    /// tags, and — the forward-compat contract — any `v` other than
    /// [`WIRE_SCHEMA_VERSION`].
    pub fn from_json_value(doc: &Json) -> Result<WireMsg, WireError> {
        if doc.as_obj().is_none() {
            return Err(wire_err("message is not a JSON object"));
        }
        let v = need_u64(doc, "v")?;
        if v != WIRE_SCHEMA_VERSION {
            return Err(wire_err(format!(
                "unsupported wire schema_version {v} (this build speaks {WIRE_SCHEMA_VERSION})"
            )));
        }
        let kind = need_str(doc, "type")?;
        match kind {
            "submit" => Ok(WireMsg::Submit {
                plan: need_str(doc, "plan")?.to_string(),
                workers: need_u64(doc, "workers")?,
            }),
            "shard" => {
                let indices = doc
                    .get("indices")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| wire_err("shard: missing indices array"))?
                    .iter()
                    .map(|j| {
                        j.as_u64()
                            .ok_or_else(|| wire_err("shard: non-integer index"))
                    })
                    .collect::<Result<Vec<u64>, WireError>>()?;
                Ok(WireMsg::Shard {
                    plan: need_str(doc, "plan")?.to_string(),
                    shard: need_u64(doc, "shard")?,
                    of: need_u64(doc, "of")?,
                    indices,
                })
            }
            "run" => {
                let run = doc
                    .get("run")
                    .ok_or_else(|| wire_err("run: missing run object"))?;
                Ok(WireMsg::Run {
                    index: need_u64(doc, "index")?,
                    spec_fingerprint: need_u64(doc, "spec")?,
                    run: CachedRun::from_json_value(run)
                        .map_err(|e| wire_err(format!("run: {e}")))?,
                })
            }
            "metrics" => {
                let snapshot = doc
                    .get("snapshot")
                    .ok_or_else(|| wire_err("metrics: missing snapshot"))?;
                Ok(WireMsg::Metrics {
                    shard: need_u64(doc, "shard")?,
                    snapshot: MetricsSnapshot::from_json_value(snapshot)
                        .map_err(|e| wire_err(format!("metrics: {e}")))?,
                })
            }
            "report" => {
                let aggregate = doc
                    .get("aggregate")
                    .ok_or_else(|| wire_err("report: missing aggregate"))?;
                Ok(WireMsg::Report {
                    render: need_str(doc, "render")?.to_string(),
                    cache_hits: need_u64(doc, "cache_hits")?,
                    aggregate: MetricsSnapshot::from_json_value(aggregate)
                        .map_err(|e| wire_err(format!("report: {e}")))?,
                })
            }
            "error" => Ok(WireMsg::Error {
                message: need_str(doc, "message")?.to_string(),
            }),
            other => Err(wire_err(format!("unknown message type {other:?}"))),
        }
    }

    /// Decodes one NDJSON line.
    ///
    /// # Errors
    ///
    /// Fails on malformed JSON or any
    /// [`from_json_value`](WireMsg::from_json_value) rejection.
    pub fn parse_line(line: &str) -> Result<WireMsg, WireError> {
        let doc = Json::parse(line.trim()).map_err(|e| wire_err(e.to_string()))?;
        WireMsg::from_json_value(&doc)
    }

    /// The `Shard` message assigning `spec`'s indices for `plan`.
    pub fn shard_assignment(plan: &str, spec: &ShardSpec) -> WireMsg {
        WireMsg::Shard {
            plan: plan.to_string(),
            shard: spec.shard as u64,
            of: spec.of as u64,
            indices: spec.indices.iter().map(|&i| i as u64).collect(),
        }
    }

    /// The `Run` message carrying `record`.
    pub fn run_delta(record: &ShardRecord) -> WireMsg {
        WireMsg::Run {
            index: record.index as u64,
            spec_fingerprint: record.spec_fingerprint,
            run: record.run.clone(),
        }
    }
}

impl WireMsg {
    /// Converts a received `Run` message back into a [`ShardRecord`] for
    /// the merge stage; `None` for other message kinds.
    pub fn into_shard_record(self) -> Option<ShardRecord> {
        match self {
            WireMsg::Run {
                index,
                spec_fingerprint,
                run,
            } => Some(ShardRecord {
                index: index as usize,
                spec_fingerprint,
                run,
            }),
            _ => None,
        }
    }
}

fn need_u64(doc: &Json, key: &str) -> Result<u64, WireError> {
    doc.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| wire_err(format!("missing or non-integer field {key:?}")))
}

fn need_str<'a>(doc: &'a Json, key: &str) -> Result<&'a str, WireError> {
    doc.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| wire_err(format!("missing or non-string field {key:?}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::RunOutcome;
    use nonfifo_telemetry::Registry;

    fn sample_run() -> CachedRun {
        let registry = Registry::new();
        registry.counter("chan.fwd.sends").add(7);
        CachedRun {
            outcome: RunOutcome::Delivered,
            fingerprint: 0xdead_beef_cafe_f00d,
            steps: 42,
            fwd_sends: 7,
            delivered: 5,
            metrics: registry.snapshot(),
        }
    }

    fn samples() -> Vec<WireMsg> {
        let registry = Registry::new();
        registry.counter("sim.messages.received").add(3);
        registry.gauge("service.active_workers").set(2);
        vec![
            WireMsg::Submit {
                plan: "scenario demo\nprotocols abp\nmessages 5\n".to_string(),
                workers: 4,
            },
            WireMsg::Shard {
                plan: "scenario demo\nprotocols abp\nmessages 5\n".to_string(),
                shard: 1,
                of: 3,
                indices: vec![1, 4, 7],
            },
            WireMsg::Run {
                index: 4,
                spec_fingerprint: 0x0123_4567_89ab_cdef,
                run: sample_run(),
            },
            WireMsg::Metrics {
                shard: 2,
                snapshot: registry.snapshot(),
            },
            WireMsg::Report {
                render: "| a | b |\n| - | - |\n".to_string(),
                cache_hits: 9,
                aggregate: registry.snapshot(),
            },
            WireMsg::Error {
                message: "plan line 3: unknown directive".to_string(),
            },
        ]
    }

    #[test]
    fn every_message_kind_round_trips_through_one_line() {
        for msg in samples() {
            let line = msg.to_line();
            assert_eq!(
                line.matches('\n').count(),
                1,
                "{}: not one line",
                msg.kind()
            );
            assert!(line.ends_with('\n'));
            let back = WireMsg::parse_line(&line).unwrap();
            assert_eq!(back, msg, "{} round trip", msg.kind());
            // Re-encoding is byte-stable.
            assert_eq!(back.to_line(), line, "{} re-encode", msg.kind());
        }
    }

    #[test]
    fn messages_embedding_newlines_stay_line_framed() {
        let msg = WireMsg::Report {
            render: "line one\nline two\nline three".to_string(),
            cache_hits: 0,
            aggregate: Registry::new().snapshot(),
        };
        let line = msg.to_line();
        assert_eq!(line.matches('\n').count(), 1);
        match WireMsg::parse_line(&line).unwrap() {
            WireMsg::Report { render, .. } => assert_eq!(render, "line one\nline two\nline three"),
            other => panic!("wrong kind: {}", other.kind()),
        }
    }

    #[test]
    fn newer_schema_versions_are_rejected_by_name() {
        let mut line = WireMsg::Error {
            message: "x".to_string(),
        }
        .to_line();
        line = line.replacen("\"v\":1", "\"v\":2", 1);
        let err = WireMsg::parse_line(&line).unwrap_err();
        assert!(
            err.to_string()
                .contains("unsupported wire schema_version 2"),
            "{err}"
        );
    }

    #[test]
    fn malformed_lines_fail_with_context() {
        for (line, needle) in [
            ("{", "wire:"),
            ("[1,2]", "not a JSON object"),
            ("{\"v\":1}", "type"),
            ("{\"v\":1,\"type\":\"warble\"}", "unknown message type"),
            ("{\"v\":1,\"type\":\"submit\",\"plan\":\"x\"}", "workers"),
            (
                "{\"v\":1,\"type\":\"shard\",\"plan\":\"x\",\"shard\":0,\"of\":1}",
                "indices",
            ),
        ] {
            let err = WireMsg::parse_line(line).unwrap_err();
            assert!(err.to_string().contains(needle), "{line}: {err}");
        }
    }

    #[test]
    fn shard_assignment_and_run_delta_mirror_the_shard_types() {
        let spec = ShardSpec {
            shard: 1,
            of: 4,
            indices: vec![1, 5, 9],
        };
        match WireMsg::shard_assignment("plan text", &spec) {
            WireMsg::Shard {
                plan,
                shard,
                of,
                indices,
            } => {
                assert_eq!(plan, "plan text");
                assert_eq!((shard, of), (1, 4));
                assert_eq!(indices, vec![1, 5, 9]);
            }
            other => panic!("wrong kind: {}", other.kind()),
        }

        let record = ShardRecord {
            index: 5,
            spec_fingerprint: 77,
            run: sample_run(),
        };
        let msg = WireMsg::run_delta(&record);
        let back = WireMsg::parse_line(&msg.to_line())
            .unwrap()
            .into_shard_record()
            .unwrap();
        assert_eq!(back, record);
    }
}
