//! E14 — Theorem 4.1 read off the telemetry pipeline: cost vs. in-transit.
//!
//! Theorem 4.1 prices message extensions in units of the in-transit
//! population: with `k` forward headers and `l` packets in transit, the
//! next delivery costs at least `l/k` sends. This experiment measures both
//! sides of that ratio *through the metrics registry* — the per-direction
//! send counters and the in-transit high-water gauge that `--metrics-out`
//! exports — rather than through the engine's own statistics, and
//! cross-checks the two sources against each other on every row.
//!
//! The contrast is the alternating bit (`k = 2`, tiny in-transit
//! population, flat cost) against the oracle-assisted \[Afe88\]
//! reconstruction (`k` labels, a PL2p channel that never drains, so the
//! in-transit population — and with it the per-message cost floor — grows
//! with `n`). Watching the `cost/msg` column track `hw/k` as `n` grows is
//! Theorem 4.1 as a time series.
//!
//! Historically this was a hand-rolled double loop in `nonfifo-core`; it
//! is now a two-protocol campaign scenario, which is exactly the workload
//! the campaign engine was built for: every row is one cached,
//! fingerprinted run, and the whole table parallelizes for free.

use crate::runner::{CampaignRunner, RunRecord};
use crate::spec::ScenarioSpec;
use nonfifo_channel::Discipline;
use nonfifo_core::experiments::table::{f3, markdown};
use std::fmt;

/// One protocol × message-count measurement, taken from exported metrics.
#[derive(Debug, Clone)]
pub struct E14Row {
    /// Protocol name.
    pub protocol: String,
    /// Forward header bound `k`.
    pub headers: u64,
    /// Messages delivered.
    pub n: u64,
    /// Forward sends, from the `chan.fwd.sends` counter.
    pub fwd_sends: u64,
    /// Average sends per message (the measured cost).
    pub cost_per_msg: f64,
    /// Peak in-transit population, from the `sim.fwd.in_transit` gauge's
    /// high-water mark.
    pub in_transit_hw: u64,
    /// The Theorem 4.1 extension floor at peak load: `hw / k`.
    pub floor: f64,
    /// True if the registry's counters agree exactly with the engine's own
    /// run statistics (telemetry cross-validation).
    pub agrees: bool,
}

/// The E14 report.
#[derive(Debug, Clone)]
pub struct E14Report {
    /// One row per (protocol, n), smallest scopes first.
    pub rows: Vec<E14Row>,
}

impl fmt::Display for E14Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.protocol.clone(),
                    r.headers.to_string(),
                    r.n.to_string(),
                    r.fwd_sends.to_string(),
                    f3(r.cost_per_msg),
                    r.in_transit_hw.to_string(),
                    f3(r.floor),
                    if r.agrees { "yes" } else { "NO" }.to_string(),
                ]
            })
            .collect();
        write!(
            f,
            "{}",
            markdown(
                &[
                    "protocol",
                    "k",
                    "n",
                    "fwd sends",
                    "cost/msg",
                    "in-transit hw",
                    "hw/k",
                    "metrics = engine",
                ],
                &rows
            )
        )
    }
}

/// The forward header bound of each protocol in the scenario.
fn headers_of(protocol: &str) -> u64 {
    match protocol {
        "abp" => 2,
        "afek4" => 4,
        other => unreachable!("e14 scenario has no protocol {other:?}"),
    }
}

fn row_from(record: &RunRecord) -> E14Row {
    let headers = headers_of(&record.spec.protocol);
    let fwd_sends = record.metrics.counters["chan.fwd.sends"];
    let in_transit_hw = record.metrics.gauges["sim.fwd.in_transit"].high_water;
    // Cross-validate the telemetry pipeline against the engine statistics
    // carried on the record.
    let agrees = fwd_sends == record.fwd_sends
        && record.metrics.counters["sim.messages.received"] == record.delivered;
    E14Row {
        protocol: record.spec.protocol.clone(),
        headers,
        n: record.spec.messages,
        fwd_sends,
        cost_per_msg: fwd_sends as f64 / record.spec.messages as f64,
        in_transit_hw,
        floor: in_transit_hw as f64 / headers as f64,
        agrees,
    }
}

/// Runs E14 over the given message-count schedule: `q = 0.3`, fixed seed,
/// as a campaign scenario (`abp` × `afek4` × scopes).
pub fn e14_cost_vs_in_transit_at(scopes: &[u64]) -> E14Report {
    let runs = ScenarioSpec::new("e14")
        .protocol("abp")
        .protocol("afek4")
        .discipline(Discipline::Probabilistic { q: 0.3 })
        .message_counts(scopes)
        .seeds(11..12)
        .expand();
    let report = CampaignRunner::new(0)
        .run(&runs)
        .expect("e14 scenario names only catalog protocols");
    // Campaign expansion is protocol-major; the published table is
    // scope-major with abp before afek at each n.
    let mut rows = Vec::new();
    for &n in scopes {
        for proto in ["abp", "afek4"] {
            let record = report
                .records
                .iter()
                .find(|r| r.spec.protocol == proto && r.spec.messages == n)
                .expect("every matrix point ran");
            rows.push(row_from(record));
        }
    }
    E14Report { rows }
}

/// Runs E14 at the published schedule, message counts doubling from 10.
///
/// The schedule stops at 80 deliberately: the \[Afe88\] rows pay
/// compounding work in `n` (the PL2p channel never drains, so both the
/// flush traffic and the per-poll scan grow with everything sent so far
/// — measured cost roughly 7x per +10 messages past `n = 60`). Run this
/// from the release-mode `report` binary, and prefer
/// [`e14_cost_vs_in_transit_at`] with smaller scopes in debug builds.
pub fn e14_cost_vs_in_transit() -> E14Report {
    e14_cost_vs_in_transit_at(&[10, 20, 40, 80])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_agree_with_engine_and_costs_track_in_transit() {
        // A shrunk schedule: the full one is release-binary territory (the
        // Afek rows compound in n and crawl under debug codegen).
        let report = e14_cost_vs_in_transit_at(&[5, 10, 20, 40]);
        assert_eq!(report.rows.len(), 8);
        for row in &report.rows {
            assert!(
                row.agrees,
                "{} at n={}: telemetry diverged from engine statistics",
                row.protocol, row.n
            );
        }
        let abp: Vec<&E14Row> = report.rows.iter().filter(|r| r.headers == 2).collect();
        let afek: Vec<&E14Row> = report.rows.iter().filter(|r| r.headers == 4).collect();
        // The alternating bit's cost stays flat: its channel drains.
        for row in &abp {
            assert!(
                row.cost_per_msg < 4.0,
                "abp cost blew up: {} at n={}",
                row.cost_per_msg,
                row.n
            );
        }
        // The Afek reconstruction pays the Theorem 4.1 price: the PL2p
        // channel never drains, the in-transit population grows with n,
        // and the per-message cost grows with it.
        assert!(afek.last().unwrap().in_transit_hw > 4 * afek[0].in_transit_hw);
        assert!(afek.last().unwrap().cost_per_msg > afek[0].cost_per_msg);
    }
}
