//! E16 — convergence from corrupted starts, across severity × chaos.
//!
//! The self-stabilization dichotomy, as a campaign matrix: the counting
//! protocol `stabilizing-dl` (DDPT'11) must converge from *every* seeded
//! corrupted start, at every corruption severity, with and without a live
//! chaos fault plan layered on top — while the FIFO-only `cycle3` trusts
//! whatever it finds in the channel and fails to recover. Each cell of the
//! matrix is one campaign scenario (protocol × severity × fault plan) over
//! a block of seeds; the row reports how many of its corrupted starts
//! converged.
//!
//! Being a campaign, the whole table parallelizes across cores, caches by
//! run fingerprint, and is byte-identical at any thread count.

use crate::runner::{CampaignRunner, RunOutcome};
use crate::spec::ScenarioSpec;
use nonfifo_channel::{CorruptionSeverity, Discipline, FaultPlan};
use nonfifo_core::experiments::table::{f3, markdown};
use std::fmt;

/// One (protocol, severity, fault plan) cell of the convergence matrix.
#[derive(Debug, Clone)]
pub struct E16Row {
    /// Protocol name.
    pub protocol: String,
    /// Corruption severity of the scrambled start.
    pub severity: CorruptionSeverity,
    /// Flattened fault-plan text, or `—` for corruption alone.
    pub faults: String,
    /// Corrupted starts examined.
    pub seeds: u64,
    /// Starts that converged to a legal suffix.
    pub converged: u64,
    /// Starts whose damage persisted past the convergence bound.
    pub diverged: u64,
    /// Starts that never finished their workload.
    pub stalled: u64,
}

impl E16Row {
    /// Fraction of this cell's corrupted starts that converged.
    pub fn rate(&self) -> f64 {
        self.converged as f64 / self.seeds as f64
    }
}

/// The E16 report.
#[derive(Debug, Clone)]
pub struct E16Report {
    /// One row per (protocol, severity, fault plan) cell, protocol-major.
    pub rows: Vec<E16Row>,
}

impl E16Report {
    /// True if every cell for `protocol` converged on all its seeds.
    pub fn certified(&self, protocol: &str) -> bool {
        let mut cells = self.rows.iter().filter(|r| r.protocol == protocol);
        let mut any = false;
        for row in &mut cells {
            any = true;
            if row.converged != row.seeds {
                return false;
            }
        }
        any
    }
}

impl fmt::Display for E16Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.protocol.clone(),
                    r.severity.to_string(),
                    r.faults.clone(),
                    r.seeds.to_string(),
                    r.converged.to_string(),
                    r.diverged.to_string(),
                    r.stalled.to_string(),
                    f3(r.rate()),
                ]
            })
            .collect();
        write!(
            f,
            "{}",
            markdown(
                &[
                    "protocol",
                    "severity",
                    "faults",
                    "seeds",
                    "converged",
                    "diverged",
                    "stalled",
                    "rate",
                ],
                &rows
            )
        )
    }
}

/// The chaos layer for the faulted half of the matrix: live duplication
/// and loss on top of the corrupted start.
const CHAOS: &str = "dup 0.1\ndrop 0.05";

/// Runs E16 with `seeds` corrupted starts per cell. The stabilizing
/// witness and the trusting contrast each cross every severity with
/// {corruption alone, corruption + chaos}; all cells ride one campaign.
pub fn e16_convergence_campaign_at(seeds: u64) -> E16Report {
    let chaos = FaultPlan::parse(CHAOS).expect("the chaos layer is a valid fault plan");
    let mut runs = Vec::new();
    let mut cells = Vec::new();
    for proto in ["stabilizing-dl", "cycle3"] {
        for severity in CorruptionSeverity::ALL {
            for plan in [None, Some(&chaos)] {
                let name = match plan {
                    None => format!("{proto}-{severity}"),
                    Some(_) => format!("{proto}-{severity}-chaos"),
                };
                let mut spec = ScenarioSpec::new(&name)
                    .protocol(proto)
                    .discipline(Discipline::Probabilistic { q: 0.2 })
                    .message_counts(&[4])
                    .seeds(0..seeds)
                    .corruption(severity);
                if let Some(plan) = plan {
                    spec = spec.fault_plan(plan.clone());
                }
                runs.extend(spec.expand());
                cells.push((name, proto, severity, plan.is_some()));
            }
        }
    }
    let report = CampaignRunner::new(0)
        .run(&runs)
        .expect("e16 scenarios name only catalog protocols");
    let rows = cells
        .into_iter()
        .map(|(name, proto, severity, chaotic)| {
            let mine = report.records.iter().filter(|r| r.spec.scenario == name);
            let mut row = E16Row {
                protocol: proto.to_string(),
                severity,
                faults: if chaotic {
                    CHAOS.lines().collect::<Vec<_>>().join("; ")
                } else {
                    "—".to_string()
                },
                seeds,
                converged: 0,
                diverged: 0,
                stalled: 0,
            };
            for record in mine {
                match record.outcome {
                    RunOutcome::Delivered => row.converged += 1,
                    RunOutcome::Diverged | RunOutcome::Violation => row.diverged += 1,
                    RunOutcome::Stalled => row.stalled += 1,
                }
            }
            row
        })
        .collect();
    E16Report { rows }
}

/// Runs E16 at the published scale: 32 corrupted starts per cell.
pub fn e16_convergence_campaign() -> E16Report {
    e16_convergence_campaign_at(32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stabilizing_dl_certifies_and_cycle3_fails_every_cell_block() {
        let report = e16_convergence_campaign_at(4);
        assert_eq!(
            report.rows.len(),
            12,
            "2 protocols × 3 severities × 2 plans"
        );
        assert!(
            report.certified("stabilizing-dl"),
            "the counting protocol must converge in every cell:\n{report}"
        );
        assert!(
            !report.certified("cycle3"),
            "a FIFO-only protocol must fail at least one corrupted start:\n{report}"
        );
        for row in &report.rows {
            assert_eq!(row.converged + row.diverged + row.stalled, row.seeds);
        }
    }
}
