//! E15 — the Theorem 5.1 growth sweep, re-run as a campaign.
//!
//! The dichotomy of Theorem 5.1: over the PL2p probabilistic channel a
//! bounded-header protocol pays `(1+q−εₙ)^Ω(n)` packets, while unbounded
//! headers stay linear. E5 measures the fitted growth *base* through the
//! dominant-packet tracker; E15 is the same sweep expressed as a campaign
//! matrix — two scenarios (the bounded `outnumber5` witness on short
//! scopes, the unbounded `seqnum` contrast on long ones) crossed with
//! `q ∈ {0.1, 0.3, 0.5}` — and reads the *per-message cost trajectory*
//! straight off the campaign records. The bounded rows' `cost/msg` must
//! compound as `n` grows; the unbounded rows' must stay flat.
//!
//! Being a campaign, the whole table parallelizes across cores, caches by
//! run fingerprint, and is byte-identical at any thread count — this is
//! the experiment the ad-hoc loops of E12–E14 grew up into.

use crate::runner::CampaignRunner;
use crate::spec::ScenarioSpec;
use nonfifo_channel::Discipline;
use nonfifo_core::experiments::table::{f3, markdown};
use std::fmt;

/// One (protocol, q, n) point of the growth sweep.
#[derive(Debug, Clone)]
pub struct E15Row {
    /// Protocol name.
    pub protocol: String,
    /// Channel delay probability.
    pub q: f64,
    /// Messages delivered.
    pub n: u64,
    /// Forward packets sent.
    pub fwd_sends: u64,
    /// Average sends per message.
    pub cost_per_msg: f64,
    /// `cost_per_msg` relative to the previous scope of the same
    /// (protocol, q) series; `None` on each series' first row.
    pub cost_growth: Option<f64>,
}

/// The E15 report.
#[derive(Debug, Clone)]
pub struct E15Report {
    /// One row per (protocol, q, n), series-major.
    pub rows: Vec<E15Row>,
}

impl fmt::Display for E15Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.protocol.clone(),
                    f3(r.q),
                    r.n.to_string(),
                    r.fwd_sends.to_string(),
                    f3(r.cost_per_msg),
                    r.cost_growth.map_or_else(|| "—".to_string(), f3),
                ]
            })
            .collect();
        write!(
            f,
            "{}",
            markdown(
                &["protocol", "q", "n", "fwd sends", "cost/msg", "cost growth"],
                &rows
            )
        )
    }
}

const QS: [f64; 3] = [0.1, 0.3, 0.5];

/// Runs E15 with explicit message-count schedules for the bounded witness
/// and the unbounded contrast. Seed 17, step budget 5M per message (the
/// E5 settings).
pub fn e15_growth_campaign_at(bounded_scopes: &[u64], unbounded_scopes: &[u64]) -> E15Report {
    let scenario = |name: &str, proto: &str, scopes: &[u64]| {
        let mut s = ScenarioSpec::new(name)
            .protocol(proto)
            .message_counts(scopes)
            .seeds(17..18)
            .budget(5_000_000);
        for q in QS {
            s = s.discipline(Discipline::Probabilistic { q });
        }
        s.expand()
    };
    let mut runs = scenario("growth-bounded", "outnumber5", bounded_scopes);
    runs.extend(scenario("growth-unbounded", "seqnum", unbounded_scopes));
    let report = CampaignRunner::new(0)
        .run(&runs)
        .expect("e15 scenarios name only catalog protocols");
    // Expansion is (protocol, q, n)-major, so records arrive series-major
    // already; growth is each row against its predecessor in the series.
    let mut rows: Vec<E15Row> = Vec::new();
    for record in &report.records {
        let q = match record.spec.discipline {
            Discipline::Probabilistic { q } => q,
            ref other => unreachable!("e15 runs only PL2p channels, got {other}"),
        };
        let cost = record.fwd_sends as f64 / record.spec.messages as f64;
        let cost_growth = rows
            .last()
            .filter(|prev| prev.protocol == record.spec.protocol && prev.q == q)
            .map(|prev| cost / prev.cost_per_msg);
        rows.push(E15Row {
            protocol: record.spec.protocol.clone(),
            q,
            n: record.spec.messages,
            fwd_sends: record.fwd_sends,
            cost_per_msg: cost,
            cost_growth,
        });
    }
    E15Report { rows }
}

/// Runs E15 at the published schedule: the bounded witness on doubling
/// short scopes (its cost compounds per message), the unbounded contrast
/// on doubling long ones.
pub fn e15_growth_campaign() -> E15Report {
    e15_growth_campaign_at(&[4, 8, 12], &[50, 100, 200])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_cost_compounds_and_unbounded_stays_flat() {
        // Shrunk scopes for debug-mode test time; the dichotomy is visible
        // immediately.
        let report = e15_growth_campaign_at(&[4, 8], &[30, 60]);
        assert_eq!(report.rows.len(), 12);
        for row in &report.rows {
            let Some(growth) = row.cost_growth else {
                continue;
            };
            if row.protocol == "outnumber5" {
                assert!(
                    growth > 2.0,
                    "outnumber5 at q={} grew only {growth}x per doubling",
                    row.q
                );
            } else {
                assert!(
                    growth < 1.5,
                    "seqnum at q={} cost grew {growth}x: not linear",
                    row.q
                );
            }
        }
    }
}
