//! Experiments that are campaigns: matrix-shaped measurements expressed as
//! [`ScenarioSpec`](crate::ScenarioSpec)s and executed by the
//! [`CampaignRunner`](crate::CampaignRunner) instead of hand-rolled loops.
//!
//! | Runner | Paper claim |
//! |--------|-------------|
//! | [`e14_cost_vs_in_transit`] | Theorem 4.1 via telemetry: per-message cost tracks the in-transit population over `k` |
//! | [`e15_growth_campaign`] | Theorem 5.1 as a campaign: bounded headers pay compounding cost over PL2p as `q` and `n` grow; unbounded headers stay linear |
//! | [`e16_convergence_campaign`] | Self-stabilization (DDPT'11): the counting protocol converges from every corrupted start across severity × chaos; a trusting protocol fails to recover |
//!
//! All are deterministic given their seeds, and — being campaigns — their
//! tables are byte-identical at any thread count.

mod e14;
mod e15;
mod e16;

pub use e14::{e14_cost_vs_in_transit, e14_cost_vs_in_transit_at, E14Report, E14Row};
pub use e15::{e15_growth_campaign, e15_growth_campaign_at, E15Report, E15Row};
pub use e16::{e16_convergence_campaign, e16_convergence_campaign_at, E16Report, E16Row};
