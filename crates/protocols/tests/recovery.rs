//! Crash-recovery semantics across every stock protocol.
//!
//! The chaos experiments crash stations mid-execution; these tests pin the
//! contract of `Recoverable::crash_amnesia` (volatile state resets, ROM
//! configuration survives) and of snapshot/restore via `clone_box`.

use nonfifo_ioa::Message;
use nonfifo_protocols::{
    AfekFlush, AlternatingBit, DataLink, GhostInfo, GoBackN, NaiveCycle, Outnumber,
    SelectiveReject, SequenceNumber, SlidingWindow,
};

fn all_protocols() -> Vec<Box<dyn DataLink>> {
    vec![
        Box::new(AlternatingBit::new()),
        Box::new(NaiveCycle::new(3)),
        Box::new(SequenceNumber::new()),
        Box::new(SlidingWindow::new(4)),
        Box::new(GoBackN::new(4)),
        Box::new(SelectiveReject::new(4)),
        Box::new(Outnumber::new(5)),
        Box::new(AfekFlush::new()),
    ]
}

/// Push the pair away from its initial state: a few messages over a
/// perfect in-memory "channel", leaving at least one message in flight.
fn perturb(
    tx: &mut nonfifo_protocols::BoxedTransmitter,
    rx: &mut nonfifo_protocols::BoxedReceiver,
) {
    for i in 0..3u64 {
        if !tx.ready() {
            break;
        }
        tx.on_send_msg(Message::identical(i));
        rx.on_ghost(&GhostInfo::default());
        while let Some(d) = tx.poll_send() {
            rx.on_receive_pkt(d);
        }
        while let Some(a) = rx.poll_send() {
            tx.on_receive_pkt(a);
        }
        while rx.poll_deliver().is_some() {}
        tx.on_tick();
        rx.on_tick();
    }
    // Leave one message pending so the crash hits a non-quiescent station.
    if tx.ready() {
        tx.on_send_msg(Message::identical(99));
    }
}

#[test]
fn amnesia_resets_to_the_initial_fingerprint() {
    for proto in all_protocols() {
        let (fresh_tx, fresh_rx) = proto.make();
        let (mut tx, mut rx) = proto.make();
        perturb(&mut tx, &mut rx);
        assert_ne!(
            tx.state_fingerprint(),
            fresh_tx.state_fingerprint(),
            "{}: perturbation should move the transmitter",
            proto.name()
        );
        tx.crash_amnesia();
        rx.crash_amnesia();
        assert_eq!(
            tx.state_fingerprint(),
            fresh_tx.state_fingerprint(),
            "{}: tx amnesia must reach the initial state",
            proto.name()
        );
        assert_eq!(
            rx.state_fingerprint(),
            fresh_rx.state_fingerprint(),
            "{}: rx amnesia must reach the initial state",
            proto.name()
        );
        assert!(
            tx.poll_send().is_none(),
            "{}: no output survives",
            proto.name()
        );
        assert!(
            rx.poll_send().is_none(),
            "{}: no acks survive",
            proto.name()
        );
        assert!(
            rx.poll_deliver().is_none(),
            "{}: no deliveries survive",
            proto.name()
        );
        assert!(
            tx.ready(),
            "{}: a rebooted transmitter is ready",
            proto.name()
        );
    }
}

#[test]
fn amnesia_preserves_rom_configuration() {
    // A rebooted k=3 cycle transmitter still labels mod 3, not mod 2.
    let mut tx = nonfifo_protocols::NaiveCycleTx::new(3);
    use nonfifo_protocols::{Recoverable, Transmitter};
    tx.on_send_msg(Message::identical(0));
    let _ = tx.poll_send();
    tx.crash_amnesia();
    for i in 0..4u64 {
        tx.on_send_msg(Message::identical(i));
        let d = tx.poll_send().expect("data packet");
        assert_eq!(
            u64::from(d.header().index()),
            i % 3,
            "labels still cycle mod 3"
        );
        // Self-ack to advance.
        tx.on_receive_pkt(nonfifo_ioa::Packet::header_only(d.header()));
    }
}

#[test]
fn snapshot_and_restore_round_trips() {
    for proto in all_protocols() {
        let (mut tx, mut rx) = proto.make();
        perturb(&mut tx, &mut rx);
        // Checkpoint with stable storage: clone_box is the snapshot.
        let snap_tx = tx.clone_box();
        let snap_rx = rx.clone_box();
        // More activity, then a crash that restores the checkpoint.
        perturb(&mut tx, &mut rx);
        tx = snap_tx.clone_box();
        rx = snap_rx.clone_box();
        assert_eq!(
            tx.state_fingerprint(),
            snap_tx.state_fingerprint(),
            "{}: restore reproduces the checkpointed tx state",
            proto.name()
        );
        assert_eq!(
            rx.state_fingerprint(),
            snap_rx.state_fingerprint(),
            "{}: restore reproduces the checkpointed rx state",
            proto.name()
        );
    }
}

#[test]
fn amnesiac_pair_still_makes_progress_together() {
    // Crash BOTH stations, then run the protocol to completion over a
    // perfect channel: a total reboot is a fresh, working protocol.
    for proto in all_protocols() {
        let (mut tx, mut rx) = proto.make();
        perturb(&mut tx, &mut rx);
        tx.crash_amnesia();
        rx.crash_amnesia();
        let mut delivered = 0u64;
        tx.on_send_msg(Message::identical(0));
        rx.on_ghost(&GhostInfo::default());
        for _ in 0..64 {
            while let Some(d) = tx.poll_send() {
                rx.on_receive_pkt(d);
            }
            while rx.poll_deliver().is_some() {
                delivered += 1;
            }
            while let Some(a) = rx.poll_send() {
                tx.on_receive_pkt(a);
            }
            if tx.ready() {
                break;
            }
            tx.on_tick();
        }
        assert_eq!(delivered, 1, "{}: rebooted pair delivers", proto.name());
    }
}
