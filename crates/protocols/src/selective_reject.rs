//! Selective reject (NAK-based retransmission) — the third classic
//! pipelined ARQ flavour.
//!
//! The receiver buffers out-of-order arrivals like the selective-repeat
//! [`SlidingWindow`](crate::SlidingWindow), but drives retransmission with
//! explicit *negative* acknowledgements: when an arrival reveals a gap, it
//! NAKs the missing number and the transmitter resends exactly that
//! message, rather than blindly re-flooding the window on a timer. Over
//! lossy FIFO channels this is the most packet-frugal of the three ARQ
//! protocols here; its modular headers alias under deep replay exactly
//! like the others (another Theorem 3.1 victim).
//!
//! Backward headers encode `ack mod M` and `NAK(s) = M + (s mod M)` — still
//! a fixed alphabet of `2M`.

use crate::api::{
    BoxedReceiver, BoxedTransmitter, DataLink, HeaderBound, Receiver, Recoverable, Transmitter,
};
use crate::sequence::varint_bytes;
use nonfifo_ioa::fingerprint::StateHash;
use nonfifo_ioa::{Header, Message, Packet, Payload};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Factory for the selective-reject protocol.
///
/// # Example
///
/// ```
/// use nonfifo_protocols::{DataLink, HeaderBound, SelectiveReject};
///
/// let proto = SelectiveReject::new(4);
/// assert_eq!(proto.forward_headers(), HeaderBound::Fixed(8)); // M = 2w
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SelectiveReject {
    window: u32,
}

impl SelectiveReject {
    /// Creates a factory with window size `window` (modulus `2·window`).
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    pub fn new(window: u32) -> Self {
        assert!(window >= 1, "window must be at least 1");
        SelectiveReject { window }
    }

    /// The window size `w`.
    pub fn window(&self) -> u32 {
        self.window
    }
}

impl DataLink for SelectiveReject {
    fn name(&self) -> String {
        format!("selective-reject(w={})", self.window)
    }

    fn forward_headers(&self) -> HeaderBound {
        HeaderBound::Fixed(self.window * 2)
    }

    fn make(&self) -> (BoxedTransmitter, BoxedReceiver) {
        (
            Box::new(SelectiveRejectTx::new(self.window)),
            Box::new(SelectiveRejectRx::new(self.window)),
        )
    }
}

/// Transmitter automaton of selective reject.
#[derive(Debug)]
pub struct SelectiveRejectTx {
    window: u64,
    modulus: u64,
    base: u64,
    next: u64,
    unacked: BTreeMap<u64, Option<Payload>>,
    /// Retransmissions requested by NAKs, FIFO.
    nak_queue: VecDeque<u64>,
    outbox: VecDeque<Packet>,
    /// Ticks since the last cumulative-ack progress; drives the slow
    /// fallback retransmission of the window base (NAKs themselves can be
    /// lost).
    stall_ticks: u32,
}

/// Manual `Clone` so `clone_from` reuses this automaton's buffers — the
/// explorer's system pool refills recycled automata in place via
/// `assign_from`, and the derived `clone_from` would reallocate instead.
impl Clone for SelectiveRejectTx {
    fn clone(&self) -> Self {
        SelectiveRejectTx {
            window: self.window,
            modulus: self.modulus,
            base: self.base,
            next: self.next,
            unacked: self.unacked.clone(),
            nak_queue: self.nak_queue.clone(),
            outbox: self.outbox.clone(),
            stall_ticks: self.stall_ticks,
        }
    }

    fn clone_from(&mut self, source: &Self) {
        self.window.clone_from(&source.window);
        self.modulus.clone_from(&source.modulus);
        self.base.clone_from(&source.base);
        self.next.clone_from(&source.next);
        self.unacked.clone_from(&source.unacked);
        self.nak_queue.clone_from(&source.nak_queue);
        self.outbox.clone_from(&source.outbox);
        self.stall_ticks.clone_from(&source.stall_ticks);
    }
}

const STALL_RESEND: u32 = 4;

impl SelectiveRejectTx {
    /// Creates the automaton with window `w`.
    pub fn new(window: u32) -> Self {
        assert!(window >= 1, "window must be at least 1");
        SelectiveRejectTx {
            window: u64::from(window),
            modulus: u64::from(window) * 2,
            base: 0,
            next: 0,
            unacked: BTreeMap::new(),
            nak_queue: VecDeque::new(),
            outbox: VecDeque::new(),
            stall_ticks: 0,
        }
    }

    /// Oldest unacknowledged full sequence number.
    pub fn base(&self) -> u64 {
        self.base
    }

    fn packet_for(&self, seq: u64, payload: Option<Payload>) -> Packet {
        let h = Header::new((seq % self.modulus) as u32);
        match payload {
            Some(p) => Packet::new(h, p),
            None => Packet::header_only(h),
        }
    }

    /// Maps a modular number from an ack/NAK back into the outstanding
    /// window, if it denotes an unacked message.
    fn resolve(&self, modular: u64) -> Option<u64> {
        let delta = (modular + self.modulus - self.base % self.modulus) % self.modulus;
        let full = self.base + delta;
        (full < self.next).then_some(full)
    }
}

impl Recoverable for SelectiveRejectTx {
    fn crash_amnesia(&mut self) {
        crate::api::amnesia_reboot(self, SelectiveRejectTx::new(self.window as u32));
    }
}

impl Transmitter for SelectiveRejectTx {
    fn on_send_msg(&mut self, m: Message) {
        debug_assert!(self.ready(), "send_msg while window full");
        let seq = self.next;
        self.next += 1;
        self.unacked.insert(seq, m.payload());
        let pkt = self.packet_for(seq, m.payload());
        self.outbox.push_back(pkt);
    }

    fn on_receive_pkt(&mut self, p: Packet) {
        let idx = u64::from(p.header().index());
        if idx < self.modulus {
            // Cumulative ack: receiver's next expected, mod M.
            let delta = (idx + self.modulus - self.base % self.modulus) % self.modulus;
            if delta > 0 && delta <= self.next - self.base {
                self.base += delta;
                self.unacked = self.unacked.split_off(&self.base);
                self.stall_ticks = 0;
            }
        } else {
            // NAK for a specific outstanding message.
            if let Some(full) = self.resolve(idx - self.modulus) {
                if self.unacked.contains_key(&full) {
                    self.nak_queue.push_back(full);
                }
            }
        }
    }

    fn on_tick(&mut self) {
        if let Some(full) = self.nak_queue.pop_front() {
            if let Some(&payload) = self.unacked.get(&full) {
                let pkt = self.packet_for(full, payload);
                self.outbox.push_back(pkt);
            }
            return;
        }
        // Fallback: if nothing is moving, resend the window base (the
        // receiver cannot NAK a loss it has no later arrival to reveal).
        if !self.unacked.is_empty() {
            self.stall_ticks += 1;
            if self.stall_ticks >= STALL_RESEND && self.outbox.is_empty() {
                self.stall_ticks = 0;
                if let Some((&seq, &payload)) = self.unacked.iter().next() {
                    let pkt = self.packet_for(seq, payload);
                    self.outbox.push_back(pkt);
                }
            }
        }
    }

    fn poll_send(&mut self) -> Option<Packet> {
        self.outbox.pop_front()
    }

    fn ready(&self) -> bool {
        self.next - self.base < self.window
    }

    fn space_bytes(&self) -> usize {
        varint_bytes(self.base)
            + varint_bytes(self.next)
            + self.unacked.len() * 9
            + self.nak_queue.len() * 8
            + self.outbox.len() * std::mem::size_of::<Packet>()
    }

    fn state_fingerprint(&self) -> u64 {
        StateHash::new("srej-tx")
            .field(self.base)
            .field(self.next)
            .field(self.nak_queue.len() as u64)
            .finish()
    }

    fn clone_box(&self) -> BoxedTransmitter {
        Box::new(self.clone())
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn assign_from(&mut self, source: &dyn Transmitter) -> bool {
        match source.as_any().downcast_ref::<Self>() {
            Some(src) => {
                self.clone_from(src);
                true
            }
            None => false,
        }
    }
}

/// Receiver automaton of selective reject.
#[derive(Debug)]
pub struct SelectiveRejectRx {
    window: u64,
    modulus: u64,
    next_expected: u64,
    buffered: BTreeMap<u64, Option<Payload>>,
    /// Full sequence numbers already NAKed (re-NAKed only when a new gap
    /// observation arrives).
    naked: BTreeSet<u64>,
    outbox: VecDeque<Packet>,
    deliveries: VecDeque<Message>,
}

/// Manual `Clone` so `clone_from` reuses this automaton's buffers — the
/// explorer's system pool refills recycled automata in place via
/// `assign_from`, and the derived `clone_from` would reallocate instead.
impl Clone for SelectiveRejectRx {
    fn clone(&self) -> Self {
        SelectiveRejectRx {
            window: self.window,
            modulus: self.modulus,
            next_expected: self.next_expected,
            buffered: self.buffered.clone(),
            naked: self.naked.clone(),
            outbox: self.outbox.clone(),
            deliveries: self.deliveries.clone(),
        }
    }

    fn clone_from(&mut self, source: &Self) {
        self.window.clone_from(&source.window);
        self.modulus.clone_from(&source.modulus);
        self.next_expected.clone_from(&source.next_expected);
        self.buffered.clone_from(&source.buffered);
        self.naked.clone_from(&source.naked);
        self.outbox.clone_from(&source.outbox);
        self.deliveries.clone_from(&source.deliveries);
    }
}

impl SelectiveRejectRx {
    /// Creates the automaton with window `w`.
    pub fn new(window: u32) -> Self {
        assert!(window >= 1, "window must be at least 1");
        SelectiveRejectRx {
            window: u64::from(window),
            modulus: u64::from(window) * 2,
            next_expected: 0,
            buffered: BTreeMap::new(),
            naked: BTreeSet::new(),
            outbox: VecDeque::new(),
            deliveries: VecDeque::new(),
        }
    }

    /// Next full sequence number the receiver will deliver.
    pub fn next_expected(&self) -> u64 {
        self.next_expected
    }

    fn ack(&mut self) {
        self.outbox.push_back(Packet::header_only(Header::new(
            (self.next_expected % self.modulus) as u32,
        )));
    }

    fn nak(&mut self, full: u64) {
        let h = self.modulus + full % self.modulus;
        self.outbox
            .push_back(Packet::header_only(Header::new(h as u32)));
    }
}

impl Recoverable for SelectiveRejectRx {
    fn crash_amnesia(&mut self) {
        crate::api::amnesia_reboot(self, SelectiveRejectRx::new(self.window as u32));
    }
}

impl Receiver for SelectiveRejectRx {
    fn on_receive_pkt(&mut self, p: Packet) {
        let s = u64::from(p.header().index());
        let delta = (s + self.modulus - self.next_expected % self.modulus) % self.modulus;
        if delta < self.window {
            let full = self.next_expected + delta;
            self.buffered.insert(full, p.payload());
            // NAK every gap below this arrival (once each).
            let gaps: Vec<u64> = (self.next_expected..full)
                .filter(|g| !self.buffered.contains_key(g) && !self.naked.contains(g))
                .collect();
            for g in gaps {
                self.naked.insert(g);
                self.nak(g);
            }
            while let Some(payload) = self.buffered.remove(&self.next_expected) {
                let msg = match payload {
                    Some(pl) => Message::with_payload(self.next_expected, pl),
                    None => Message::identical(self.next_expected),
                };
                self.deliveries.push_back(msg);
                self.naked.remove(&self.next_expected);
                self.next_expected += 1;
            }
        }
        self.ack();
    }

    fn poll_send(&mut self) -> Option<Packet> {
        self.outbox.pop_front()
    }

    fn poll_deliver(&mut self) -> Option<Message> {
        self.deliveries.pop_front()
    }

    fn space_bytes(&self) -> usize {
        varint_bytes(self.next_expected)
            + self.buffered.len() * 9
            + self.naked.len() * 8
            + self.outbox.len() * std::mem::size_of::<Packet>()
    }

    fn state_fingerprint(&self) -> u64 {
        StateHash::new("srej-rx")
            .field(self.next_expected)
            .field(self.buffered.keys().copied().collect::<Vec<_>>())
            .finish()
    }

    fn clone_box(&self) -> BoxedReceiver {
        Box::new(self.clone())
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn assign_from(&mut self, source: &dyn Receiver) -> bool {
        match source.as_any().downcast_ref::<Self>() {
            Some(src) => {
                self.clone_from(src);
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pump(tx: &mut SelectiveRejectTx, rx: &mut SelectiveRejectRx) {
        while let Some(d) = tx.poll_send() {
            rx.on_receive_pkt(d);
        }
        while let Some(a) = rx.poll_send() {
            tx.on_receive_pkt(a);
        }
    }

    #[test]
    fn pipeline_over_perfect_channel() {
        let mut tx = SelectiveRejectTx::new(4);
        let mut rx = SelectiveRejectRx::new(4);
        let mut delivered = 0u64;
        let mut sent = 0u64;
        while delivered < 25 {
            while tx.ready() && sent < 25 {
                tx.on_send_msg(Message::identical(sent));
                sent += 1;
            }
            pump(&mut tx, &mut rx);
            while let Some(m) = rx.poll_deliver() {
                assert_eq!(m.id().raw(), delivered);
                delivered += 1;
            }
            tx.on_tick();
        }
        assert_eq!(tx.base(), 25);
    }

    #[test]
    fn gap_triggers_exactly_one_nak_and_one_retransmission() {
        let mut tx = SelectiveRejectTx::new(4);
        let mut rx = SelectiveRejectRx::new(4);
        tx.on_send_msg(Message::identical(0));
        tx.on_send_msg(Message::identical(1));
        tx.on_send_msg(Message::identical(2));
        let d0 = tx.poll_send().unwrap();
        let _lost_d1 = tx.poll_send().unwrap();
        let d2 = tx.poll_send().unwrap();
        rx.on_receive_pkt(d0);
        rx.on_receive_pkt(d2); // reveals the gap at 1
                               // Outbox: ack, NAK(1), ack.
        let naks: Vec<Packet> = std::iter::from_fn(|| rx.poll_send()).collect();
        let nak_count = naks
            .iter()
            .filter(|p| u64::from(p.header().index()) >= 8)
            .count();
        assert_eq!(nak_count, 1, "exactly one NAK for the one gap");
        for a in naks {
            tx.on_receive_pkt(a);
        }
        // The NAK drives a single retransmission of message 1.
        tx.on_tick();
        let re = tx.poll_send().expect("retransmission");
        assert_eq!(re.header().index(), 1);
        rx.on_receive_pkt(re);
        let ids: Vec<u64> =
            std::iter::from_fn(|| rx.poll_deliver().map(|m| m.id().raw())).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn repeated_gap_observations_do_not_renak() {
        let mut rx = SelectiveRejectRx::new(4);
        rx.on_receive_pkt(Packet::header_only(Header::new(1))); // gap at 0
        rx.on_receive_pkt(Packet::header_only(Header::new(2))); // gap still at 0
        let naks = std::iter::from_fn(|| rx.poll_send())
            .filter(|p| u64::from(p.header().index()) >= 8)
            .count();
        assert_eq!(naks, 1, "the same gap is NAKed once");
    }

    #[test]
    fn stall_fallback_recovers_tail_loss() {
        // Lose the only packet: no later arrival can reveal the gap, so
        // the stall timer must resend.
        let mut tx = SelectiveRejectTx::new(2);
        let mut rx = SelectiveRejectRx::new(2);
        tx.on_send_msg(Message::identical(0));
        let _lost = tx.poll_send().unwrap();
        for _ in 0..STALL_RESEND {
            tx.on_tick();
        }
        pump(&mut tx, &mut rx);
        assert_eq!(rx.poll_deliver().unwrap().id().raw(), 0);
    }

    #[test]
    fn frugal_over_loss_compared_to_go_back_n() {
        // Same loss pattern, window 4: selective reject retransmits one
        // packet where go-back-n resends the whole window.
        use crate::go_back_n::{GoBackNRx, GoBackNTx};
        let run_srej = || {
            let mut tx = SelectiveRejectTx::new(4);
            let mut rx = SelectiveRejectRx::new(4);
            let mut sent_packets = 0u64;
            for i in 0..4u64 {
                tx.on_send_msg(Message::identical(i));
            }
            let mut first = true;
            while let Some(d) = tx.poll_send() {
                sent_packets += 1;
                if first {
                    first = false; // drop the first packet
                } else {
                    rx.on_receive_pkt(d);
                }
            }
            // Drive to completion.
            for _ in 0..20 {
                while let Some(a) = rx.poll_send() {
                    tx.on_receive_pkt(a);
                }
                tx.on_tick();
                while let Some(d) = tx.poll_send() {
                    sent_packets += 1;
                    rx.on_receive_pkt(d);
                }
                if tx.base() == 4 {
                    break;
                }
            }
            assert_eq!(tx.base(), 4);
            sent_packets
        };
        let run_gbn = || {
            let mut tx = GoBackNTx::new(4);
            let mut rx = GoBackNRx::new(4);
            let mut sent_packets = 0u64;
            for i in 0..4u64 {
                tx.on_send_msg(Message::identical(i));
            }
            let mut first = true;
            while let Some(d) = tx.poll_send() {
                sent_packets += 1;
                if first {
                    first = false;
                } else {
                    rx.on_receive_pkt(d);
                }
            }
            for _ in 0..20 {
                while let Some(a) = rx.poll_send() {
                    tx.on_receive_pkt(a);
                }
                tx.on_tick();
                while let Some(d) = tx.poll_send() {
                    sent_packets += 1;
                    rx.on_receive_pkt(d);
                }
                if tx.base() == 4 {
                    break;
                }
            }
            assert_eq!(tx.base(), 4);
            sent_packets
        };
        assert!(
            run_srej() < run_gbn(),
            "selective reject should beat go-back-n under single loss"
        );
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn rejects_zero_window() {
        let _ = SelectiveReject::new(0);
    }
}
