//! Name-based protocol resolution shared by the CLI and campaign layers.
//!
//! The table lives next to the protocols themselves so every front end
//! (`nonfifo run`, campaign plan files, experiment configs) resolves the
//! same spellings to the same factories.

use crate::{
    AfekFlush, AlternatingBit, DataLink, GoBackN, NaiveCycle, Outnumber, SelectiveReject,
    SequenceNumber, SlidingWindow, StabilizingDl,
};
use std::fmt;

/// Protocol names accepted by [`by_name`], with one-line descriptions.
pub const PROTOCOLS: &[(&str, &str)] = &[
    ("abp", "alternating bit [BSW69]: 2 headers, lossy-FIFO only"),
    ("cycle<k>", "naive k-label cycle (e.g. cycle3): FIFO only"),
    ("seqnum", "sequence numbers: n headers, safe everywhere"),
    (
        "window<w>",
        "selective-repeat sliding window (e.g. window4): 2w headers",
    ),
    (
        "gbn<w>",
        "go-back-n (e.g. gbn4): w+1 headers, cumulative acks",
    ),
    ("srej<w>", "selective reject (e.g. srej4): NAK-driven ARQ"),
    (
        "outnumber<L>",
        "AFWZ'88 reconstruction (e.g. outnumber5): exponential",
    ),
    (
        "afek<k>",
        "Afek'88 reconstruction (e.g. afek3): oracle-assisted, linear in transit",
    ),
    (
        "stabilizing-dl[<c>]",
        "self-stabilizing counting protocol [DDPT'11]: converges from any corrupted state",
    ),
];

/// A protocol name [`by_name`] could not resolve.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownProtocol(pub String);

impl fmt::Display for UnknownProtocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown protocol {:?} (try: abp, cycle3, seqnum, window4, gbn4, outnumber5, afek3)",
            self.0
        )
    }
}

impl std::error::Error for UnknownProtocol {}

fn parse_suffix(name: &str, prefix: &str) -> Option<u32> {
    name.strip_prefix(prefix).and_then(|s| s.parse().ok())
}

/// Builds a protocol factory from its catalog name.
///
/// # Errors
///
/// Fails on unknown names and out-of-range parameters (`cycle<k>` needs
/// `k ≥ 2`, the window family `w ≥ 1`, `outnumber<L>` `L ≥ 3`, `afek<k>`
/// `k ≥ 3`).
pub fn by_name(name: &str) -> Result<Box<dyn DataLink>, UnknownProtocol> {
    if name == "abp" {
        return Ok(Box::new(AlternatingBit::new()));
    }
    if name == "seqnum" {
        return Ok(Box::new(SequenceNumber::new()));
    }
    if let Some(k) = parse_suffix(name, "cycle") {
        if k >= 2 {
            return Ok(Box::new(NaiveCycle::new(k)));
        }
    }
    if let Some(w) = parse_suffix(name, "window") {
        if w >= 1 {
            return Ok(Box::new(SlidingWindow::new(w)));
        }
    }
    if let Some(w) = parse_suffix(name, "gbn") {
        if w >= 1 {
            return Ok(Box::new(GoBackN::new(w)));
        }
    }
    if let Some(w) = parse_suffix(name, "srej") {
        if w >= 1 {
            return Ok(Box::new(SelectiveReject::new(w)));
        }
    }
    if let Some(l) = parse_suffix(name, "outnumber") {
        if l >= 3 {
            return Ok(Box::new(Outnumber::new(l)));
        }
    }
    if let Some(k) = parse_suffix(name, "afek") {
        if k >= 3 {
            return Ok(Box::new(AfekFlush::with_labels(k)));
        }
    }
    if name == "stabilizing-dl" {
        return Ok(Box::new(StabilizingDl::new()));
    }
    if let Some(c) = parse_suffix(name, "stabilizing-dl") {
        if c >= 1 {
            return Ok(Box::new(StabilizingDl::with_capacity(c)));
        }
    }
    Err(UnknownProtocol(name.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_names_resolve() {
        for name in [
            "abp",
            "cycle3",
            "seqnum",
            "window4",
            "gbn2",
            "srej4",
            "outnumber5",
            "afek3",
            "stabilizing-dl",
            "stabilizing-dl2",
        ] {
            assert!(by_name(name).is_ok(), "{name}");
        }
        for name in [
            "cycle1",
            "window0",
            "outnumber2",
            "afek2",
            "stabilizing-dl0",
            "nope",
        ] {
            assert!(by_name(name).is_err(), "{name}");
        }
    }

    #[test]
    fn stabilizing_dl_spellings() {
        assert_eq!(
            by_name("stabilizing-dl").unwrap().name(),
            "stabilizing-dl(c=4)"
        );
        assert_eq!(
            by_name("stabilizing-dl7").unwrap().name(),
            "stabilizing-dl(c=7)"
        );
    }

    #[test]
    fn boxed_factory_forwards() {
        let boxed = by_name("abp").unwrap();
        assert_eq!(boxed.name(), AlternatingBit::new().name());
        assert_eq!(boxed.forward_headers(), crate::HeaderBound::Fixed(2));
        assert!(!boxed.uses_ghosts());
        let (tx, rx) = boxed.make();
        assert!(tx.ready());
        drop(rx);
    }
}
