//! Reconstruction of the bounded-header protocol of [AFWZ88]
//! (*Reliable communication using unreliable channels*, manuscript, 1988 —
//! cited by the paper but never published in this form).
//!
//! ## Mechanism
//!
//! Message `i` travels as label `i mod L` (so `L` forward headers, default
//! 5, matching the five-packet construction later published by the same
//! line of work). The receiver refuses to believe a new message until the
//! new label has *outnumbered* everything it had ever received before:
//! it delivers message `i` only after receiving more copies of label
//! `i mod L` (since its last delivery) than its entire receipt count prior
//! to that delivery. Acknowledgements carry the message index (unbounded
//! backward headers — see the crate docs for why this does not weaken any
//! theorem).
//!
//! ## Properties
//!
//! - **Cost**: per-message receipts must exceed all prior receipts, so the
//!   packet count at least doubles per message — "even in the best case it
//!   is exponential in the number of messages delivered", exactly the
//!   behaviour the paper attributes to [AFWZ88] (§1), and an upper witness
//!   for Theorem 5.1's `(1+q−εₙ)^Ω(n)` lower bound (experiment E5).
//! - **Safety domain**: over any channel whose stale-copy population stays
//!   below the receiver's historical receipt count — in particular over
//!   [`ProbabilisticChannel`](../nonfifo_channel/struct.ProbabilisticChannel.html)
//!   with `q < ½`, where delayed copies number about `q/(1−q)` of receipts.
//!   It is **not** safe against the unbounded adversary (no bounded-header
//!   protocol with this simple structure is; the falsifier will find the
//!   violating execution). Every experiment runs under a
//!   [`SpecMonitor`](../nonfifo_ioa/struct.SpecMonitor.html), so a safety
//!   escape would abort the run rather than corrupt a measurement.
//!
//! The protocol ignores payloads: like the paper's model it implements the
//! identical-message service (a stale copy is indistinguishable from a
//! fresh one, so payloads could not be trusted anyway).

use crate::api::{
    BoxedReceiver, BoxedTransmitter, DataLink, HeaderBound, Receiver, Recoverable, Transmitter,
};
use crate::sequence::varint_bytes;
use nonfifo_ioa::fingerprint::StateHash;
use nonfifo_ioa::{Header, Message, Packet};
use std::collections::VecDeque;

/// Factory for the outnumber protocol.
///
/// # Example
///
/// ```
/// use nonfifo_protocols::{DataLink, HeaderBound, Outnumber};
///
/// let proto = Outnumber::new(5);
/// assert_eq!(proto.forward_headers(), HeaderBound::Fixed(5));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Outnumber {
    labels: u32,
}

impl Outnumber {
    /// Creates a factory with `labels` forward headers.
    ///
    /// # Panics
    ///
    /// Panics if `labels < 3` (two labels cannot separate three consecutive
    /// rounds).
    pub fn new(labels: u32) -> Self {
        assert!(
            labels >= 3,
            "outnumber needs at least 3 labels, got {labels}"
        );
        Outnumber { labels }
    }

    /// The default five-label instance.
    pub fn factory() -> Self {
        Outnumber::new(5)
    }

    /// The number of forward labels `L`.
    pub fn labels(&self) -> u32 {
        self.labels
    }
}

impl DataLink for Outnumber {
    fn name(&self) -> String {
        format!("outnumber(L={})", self.labels)
    }

    fn forward_headers(&self) -> HeaderBound {
        HeaderBound::Fixed(self.labels)
    }

    fn make(&self) -> (BoxedTransmitter, BoxedReceiver) {
        (
            Box::new(OutnumberTx::new(self.labels)),
            Box::new(OutnumberRx::new(self.labels)),
        )
    }
}

/// Transmitter automaton of the outnumber protocol.
#[derive(Debug)]
pub struct OutnumberTx {
    labels: u64,
    /// Index of the current (or next) message, 0-based.
    idx: u64,
    pending: bool,
    total_sent: u64,
    outbox: VecDeque<Packet>,
}

/// Manual `Clone` so `clone_from` reuses this automaton's buffers — the
/// explorer's system pool refills recycled automata in place via
/// `assign_from`, and the derived `clone_from` would reallocate instead.
impl Clone for OutnumberTx {
    fn clone(&self) -> Self {
        OutnumberTx {
            labels: self.labels,
            idx: self.idx,
            pending: self.pending,
            total_sent: self.total_sent,
            outbox: self.outbox.clone(),
        }
    }

    fn clone_from(&mut self, source: &Self) {
        self.labels.clone_from(&source.labels);
        self.idx.clone_from(&source.idx);
        self.pending.clone_from(&source.pending);
        self.total_sent.clone_from(&source.total_sent);
        self.outbox.clone_from(&source.outbox);
    }
}

impl OutnumberTx {
    /// Creates the automaton.
    pub fn new(labels: u32) -> Self {
        OutnumberTx {
            labels: u64::from(labels),
            idx: 0,
            pending: false,
            total_sent: 0,
            outbox: VecDeque::new(),
        }
    }

    /// Total data copies sent so far.
    pub fn total_sent(&self) -> u64 {
        self.total_sent
    }

    fn label(&self) -> Header {
        Header::new((self.idx % self.labels) as u32)
    }

    fn enqueue_data(&mut self) {
        let pkt = Packet::header_only(self.label());
        self.outbox.push_back(pkt);
        self.total_sent += 1;
    }
}

impl Recoverable for OutnumberTx {
    fn crash_amnesia(&mut self) {
        self.idx = 0;
        self.pending = false;
        self.total_sent = 0;
        self.outbox.clear();
    }
}

impl Transmitter for OutnumberTx {
    fn on_send_msg(&mut self, _m: Message) {
        debug_assert!(!self.pending, "send_msg while not ready");
        self.pending = true;
        self.enqueue_data();
    }

    fn on_receive_pkt(&mut self, p: Packet) {
        // Indexed acknowledgement: exact match completes the message.
        if self.pending && u64::from(p.header().index()) == self.idx {
            self.pending = false;
            self.idx += 1;
        }
    }

    fn on_tick(&mut self) {
        if self.pending && self.outbox.is_empty() {
            self.enqueue_data();
        }
    }

    fn poll_send(&mut self) -> Option<Packet> {
        self.outbox.pop_front()
    }

    fn ready(&self) -> bool {
        !self.pending
    }

    fn space_bytes(&self) -> usize {
        varint_bytes(self.idx)
            + varint_bytes(self.total_sent)
            + 1
            + self.outbox.len() * std::mem::size_of::<Packet>()
    }

    fn state_fingerprint(&self) -> u64 {
        StateHash::new("outnumber-tx")
            .field(self.idx)
            .field(self.pending)
            .finish()
    }

    fn clone_box(&self) -> BoxedTransmitter {
        Box::new(self.clone())
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn assign_from(&mut self, source: &dyn Transmitter) -> bool {
        match source.as_any().downcast_ref::<Self>() {
            Some(src) => {
                self.clone_from(src);
                true
            }
            None => false,
        }
    }
}

/// Receiver automaton of the outnumber protocol.
#[derive(Debug)]
pub struct OutnumberRx {
    labels: u64,
    /// Next undelivered message index, 0-based.
    next: u64,
    /// Copies per label received since the last delivery.
    since_delivery: Vec<u64>,
    /// Total copies ever received.
    total_received: u64,
    /// `total_received` snapshot at the last delivery — the outnumber
    /// threshold.
    threshold: u64,
    outbox: VecDeque<Packet>,
    deliveries: VecDeque<Message>,
}

/// Manual `Clone` so `clone_from` reuses this automaton's buffers — the
/// explorer's system pool refills recycled automata in place via
/// `assign_from`, and the derived `clone_from` would reallocate instead.
impl Clone for OutnumberRx {
    fn clone(&self) -> Self {
        OutnumberRx {
            labels: self.labels,
            next: self.next,
            since_delivery: self.since_delivery.clone(),
            total_received: self.total_received,
            threshold: self.threshold,
            outbox: self.outbox.clone(),
            deliveries: self.deliveries.clone(),
        }
    }

    fn clone_from(&mut self, source: &Self) {
        self.labels.clone_from(&source.labels);
        self.next.clone_from(&source.next);
        self.since_delivery.clone_from(&source.since_delivery);
        self.total_received.clone_from(&source.total_received);
        self.threshold.clone_from(&source.threshold);
        self.outbox.clone_from(&source.outbox);
        self.deliveries.clone_from(&source.deliveries);
    }
}

impl OutnumberRx {
    /// Creates the automaton.
    pub fn new(labels: u32) -> Self {
        OutnumberRx {
            labels: u64::from(labels),
            next: 0,
            since_delivery: vec![0; labels as usize],
            total_received: 0,
            threshold: 0,
            outbox: VecDeque::new(),
            deliveries: VecDeque::new(),
        }
    }

    /// The current outnumber threshold.
    pub fn threshold(&self) -> u64 {
        self.threshold
    }

    /// Total data copies received so far.
    pub fn total_received(&self) -> u64 {
        self.total_received
    }

    fn expected_label(&self) -> u64 {
        self.next % self.labels
    }

    fn ack(&mut self, index: u64) {
        self.outbox
            .push_back(Packet::header_only(Header::new(index as u32)));
    }
}

impl Recoverable for OutnumberRx {
    fn crash_amnesia(&mut self) {
        self.next = 0;
        self.since_delivery.fill(0);
        self.total_received = 0;
        self.threshold = 0;
        self.outbox.clear();
        self.deliveries.clear();
    }
}

impl Receiver for OutnumberRx {
    fn on_receive_pkt(&mut self, p: Packet) {
        let l = u64::from(p.header().index()) % self.labels;
        self.total_received += 1;
        self.since_delivery[l as usize] += 1;
        if l == self.expected_label() && self.since_delivery[l as usize] > self.threshold {
            self.deliveries.push_back(Message::identical(self.next));
            self.next += 1;
            self.threshold = self.total_received;
            self.since_delivery.fill(0);
            self.ack(self.next - 1);
        } else if self.next > 0 && l == (self.next - 1) % self.labels {
            // Copy of the previously delivered message's label: the
            // transmitter may have missed our ack — repeat it.
            self.ack(self.next - 1);
        }
    }

    fn poll_send(&mut self) -> Option<Packet> {
        self.outbox.pop_front()
    }

    fn poll_deliver(&mut self) -> Option<Message> {
        self.deliveries.pop_front()
    }

    fn space_bytes(&self) -> usize {
        varint_bytes(self.next)
            + varint_bytes(self.total_received)
            + varint_bytes(self.threshold)
            + self
                .since_delivery
                .iter()
                .map(|&c| varint_bytes(c))
                .sum::<usize>()
            + self.outbox.len() * std::mem::size_of::<Packet>()
    }

    fn state_fingerprint(&self) -> u64 {
        StateHash::new("outnumber-rx")
            .field(self.next)
            .field(self.threshold)
            .field(&self.since_delivery)
            .finish()
    }

    fn clone_box(&self) -> BoxedReceiver {
        Box::new(self.clone())
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn assign_from(&mut self, source: &dyn Receiver) -> bool {
        match source.as_any().downcast_ref::<Self>() {
            Some(src) => {
                self.clone_from(src);
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Pump one message end-to-end over a perfect channel, returning how
    /// many data copies it took.
    fn deliver_one(tx: &mut BoxedTransmitter, rx: &mut BoxedReceiver, i: u64, budget: u64) -> u64 {
        tx.on_send_msg(Message::identical(i));
        let mut copies = 0;
        for _ in 0..budget {
            while let Some(d) = tx.poll_send() {
                copies += 1;
                rx.on_receive_pkt(d);
            }
            while let Some(a) = rx.poll_send() {
                tx.on_receive_pkt(a);
            }
            if tx.ready() {
                assert_eq!(rx.poll_deliver().unwrap().id().raw(), i);
                return copies;
            }
            tx.on_tick();
        }
        panic!("message {i} not delivered within budget");
    }

    #[test]
    fn best_case_cost_is_exponential() {
        let (mut tx, mut rx) = Outnumber::new(5).make();
        let costs: Vec<u64> = (0..8)
            .map(|i| deliver_one(&mut tx, &mut rx, i, 1 << 12))
            .collect();
        // First message is cheap; after that each message must outnumber
        // the entire history: cost at least doubles.
        assert_eq!(costs[0], 1);
        for w in costs.windows(2).skip(1) {
            assert!(w[1] >= 2 * w[0], "costs not doubling: {costs:?}");
        }
    }

    #[test]
    fn threshold_tracks_history() {
        let (mut tx, mut rx_boxed) = Outnumber::new(3).make();
        deliver_one(&mut tx, &mut rx_boxed, 0, 1 << 10);
        deliver_one(&mut tx, &mut rx_boxed, 1, 1 << 10);
        // Downcast-free check through the public debug surface: cost of
        // message 2 exceeds the sum of everything before.
        let c2 = deliver_one(&mut tx, &mut rx_boxed, 2, 1 << 10);
        assert!(c2 >= 3);
    }

    #[test]
    fn stale_copies_below_threshold_are_ignored() {
        let mut rx = OutnumberRx::new(3);
        // Deliver message 0 (threshold 0 → first copy delivers).
        rx.on_receive_pkt(Packet::header_only(Header::new(0)));
        assert!(rx.poll_deliver().is_some());
        assert_eq!(rx.threshold(), 1);
        // One stale copy of label 1 does not reach the threshold (needs 2).
        rx.on_receive_pkt(Packet::header_only(Header::new(1)));
        assert!(rx.poll_deliver().is_none());
        rx.on_receive_pkt(Packet::header_only(Header::new(1)));
        assert!(rx.poll_deliver().is_some());
    }

    #[test]
    fn reacks_previous_message() {
        let mut rx = OutnumberRx::new(3);
        rx.on_receive_pkt(Packet::header_only(Header::new(0)));
        rx.poll_deliver().unwrap();
        let first_ack = rx.poll_send().unwrap();
        assert_eq!(first_ack.header().index(), 0);
        // A duplicate of label 0 (the delivered message) re-acks.
        rx.on_receive_pkt(Packet::header_only(Header::new(0)));
        assert_eq!(rx.poll_send().unwrap().header().index(), 0);
    }

    #[test]
    fn transmitter_ignores_wrong_index_acks() {
        let mut tx = OutnumberTx::new(3);
        tx.on_send_msg(Message::identical(0));
        tx.on_receive_pkt(Packet::header_only(Header::new(7)));
        assert!(!tx.ready());
        tx.on_receive_pkt(Packet::header_only(Header::new(0)));
        assert!(tx.ready());
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn rejects_two_labels() {
        let _ = Outnumber::new(2);
    }
}
