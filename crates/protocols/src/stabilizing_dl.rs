//! A self-stabilizing data-link protocol following the counting principle of
//! Dolev, Dubois, Potop-Butucaru & Tixeuil, *Stabilizing Data-Link over
//! non-FIFO Channels with Optimal Fault-Resilience* (arXiv:1011.3632).
//!
//! Each message round travels under a fresh unbounded counter; the receiver
//! delivers a counter it has not passed only after sighting **`capacity + 1`
//! identical copies** of it. Whatever junk a corrupted initial configuration
//! holds — in either channel or in the automata's queues — can therefore
//! never trigger a delivery as long as no junk value appears more than
//! `capacity` times, which is exactly DDPT's fault-resilience trade-off: the
//! counting capacity must exceed the maximum multiplicity of corrupted
//! copies. The source paper's impossibility result (and Mansour–Schieber's
//! bounded-header intractability, which it extends) shows bounded headers
//! cannot achieve this, so the counters here are honestly unbounded
//! ([`HeaderBound::PerMessage`]).
//!
//! This implementation is a faithful reconstruction of the *principle*, not
//! a line-by-line transcription of DDPT's automata: rounds are keyed by full
//! packet value (counter + payload), acknowledgements carry the receiver's
//! last-delivered counter, and the transmitter adopts higher foreign
//! counters only when doing so cannot double-deliver (see
//! [`StabilizingDlTx::on_receive_pkt`]).

use crate::api::{
    BoxedReceiver, BoxedTransmitter, DataLink, HeaderBound, Receiver, Recoverable, Transmitter,
};
use nonfifo_ioa::fingerprint::StateHash;
use nonfifo_ioa::{Header, Message, Packet};
use std::collections::{BTreeMap, VecDeque};

/// Default counting capacity: delivery needs 5 identical sightings, so
/// corruption multiplicity up to 4 is tolerated (the workspace's scramble
/// plans inject at most 3 copies of any value).
pub const DEFAULT_CAPACITY: u32 = 4;

/// Counters adopted from acknowledgements are clamped here so the `+ 1`
/// re-key can never wrap `u32`, whatever junk an adversary acks with.
const COUNTER_CLAMP: u32 = 1 << 30;

/// Factory for the stabilizing data-link protocol.
///
/// # Example
///
/// ```
/// use nonfifo_protocols::{DataLink, HeaderBound, StabilizingDl};
///
/// let proto = StabilizingDl::new();
/// assert_eq!(proto.forward_headers(), HeaderBound::PerMessage);
/// let (_tx, _rx) = proto.make();
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StabilizingDl {
    capacity: u32,
}

impl StabilizingDl {
    /// Creates the factory with [`DEFAULT_CAPACITY`].
    pub fn new() -> Self {
        StabilizingDl {
            capacity: DEFAULT_CAPACITY,
        }
    }

    /// Creates the factory with an explicit counting capacity: the receiver
    /// delivers after `capacity + 1` identical sightings, tolerating
    /// corruption multiplicity up to `capacity`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is 0 (a capacity-0 receiver delivers on first
    /// sighting and stabilizes against nothing).
    pub fn with_capacity(capacity: u32) -> Self {
        assert!(capacity >= 1, "counting capacity must be at least 1");
        StabilizingDl { capacity }
    }

    /// The counting capacity.
    pub fn capacity(&self) -> u32 {
        self.capacity
    }
}

impl Default for StabilizingDl {
    fn default() -> Self {
        StabilizingDl::new()
    }
}

impl DataLink for StabilizingDl {
    fn name(&self) -> String {
        format!("stabilizing-dl(c={})", self.capacity)
    }

    fn forward_headers(&self) -> HeaderBound {
        HeaderBound::PerMessage
    }

    fn make(&self) -> (BoxedTransmitter, BoxedReceiver) {
        (
            Box::new(StabilizingDlTx::new(self.capacity)),
            Box::new(StabilizingDlRx::new(self.capacity)),
        )
    }
}

/// Transmitter automaton of the stabilizing data-link protocol.
#[derive(Debug)]
pub struct StabilizingDlTx {
    capacity: u32,
    seq: u32,
    pending: Option<Message>,
    copies_sent: u32,
    outbox: VecDeque<Packet>,
}

/// Manual `Clone` so `clone_from` reuses this automaton's buffers — the
/// explorer's system pool refills recycled automata in place via
/// `assign_from`, and the derived `clone_from` would reallocate instead.
impl Clone for StabilizingDlTx {
    fn clone(&self) -> Self {
        StabilizingDlTx {
            capacity: self.capacity,
            seq: self.seq,
            pending: self.pending,
            copies_sent: self.copies_sent,
            outbox: self.outbox.clone(),
        }
    }

    fn clone_from(&mut self, source: &Self) {
        self.capacity.clone_from(&source.capacity);
        self.seq.clone_from(&source.seq);
        self.pending.clone_from(&source.pending);
        self.copies_sent.clone_from(&source.copies_sent);
        self.outbox.clone_from(&source.outbox);
    }
}

impl StabilizingDlTx {
    /// Creates the automaton with the given counting capacity.
    pub fn new(capacity: u32) -> Self {
        assert!(capacity >= 1, "counting capacity must be at least 1");
        StabilizingDlTx {
            capacity,
            seq: 0,
            pending: None,
            copies_sent: 0,
            outbox: VecDeque::new(),
        }
    }

    /// The current round counter.
    pub fn seq(&self) -> u32 {
        self.seq
    }

    fn data_packet(&self, m: Message) -> Packet {
        match m.payload() {
            Some(p) => Packet::new(Header::new(self.seq), p),
            None => Packet::header_only(Header::new(self.seq)),
        }
    }

    fn emit_copy(&mut self, m: Message) {
        let pkt = self.data_packet(m);
        self.outbox.push_back(pkt);
        self.copies_sent = self.copies_sent.saturating_add(1);
    }
}

impl Recoverable for StabilizingDlTx {
    fn crash_amnesia(&mut self) {
        crate::api::amnesia_reboot(self, Self::new(self.capacity));
    }
}

impl Transmitter for StabilizingDlTx {
    fn on_send_msg(&mut self, m: Message) {
        debug_assert!(self.pending.is_none(), "send_msg while not ready");
        self.seq += 1;
        self.pending = Some(m);
        self.copies_sent = 0;
        self.emit_copy(m);
    }

    /// Acknowledgements carry the receiver's last-delivered counter `a`.
    ///
    /// - `a == seq`: the current round was delivered — complete it.
    /// - `a < seq`: stale, ignore.
    /// - `a > seq`: the receiver claims to be *ahead* of us. From any
    ///   state the scramble generator can produce this is junk (the real
    ///   receiver's counter never exceeds the transmitter's), but from a
    ///   truly arbitrary state it can be genuine, and ignoring it would
    ///   deadlock the round: the receiver only delivers counters above its
    ///   own. So the transmitter *adopts* `a` and re-keys the pending round
    ///   above it — but only while `copies_sent ≤ capacity`. The guard is
    ///   what keeps adoption single-delivery-safe: at most `capacity` copies
    ///   of the old key exist, so the old key can never reach the receiver's
    ///   `capacity + 1` threshold, and the message is delivered exactly once
    ///   (under the new key). Once `copies_sent > capacity` the old key may
    ///   already be deliverable and adoption could double-deliver, so the
    ///   ack is dropped instead — safety over junk-tolerance.
    fn on_receive_pkt(&mut self, p: Packet) {
        let a = p.header().index();
        if self.pending.is_some() {
            if a == self.seq {
                self.pending = None;
                self.copies_sent = 0;
                self.outbox.clear();
            } else if a > self.seq && self.copies_sent <= self.capacity {
                self.seq = a.min(COUNTER_CLAMP) + 1;
                self.copies_sent = 0;
                self.outbox.clear();
                if let Some(m) = self.pending {
                    self.emit_copy(m);
                }
            }
        } else if a > self.seq {
            // Idle adoption: keep our counter above anything the receiver
            // has passed, so the next round's counter is fresh.
            self.seq = a.min(COUNTER_CLAMP);
        }
    }

    fn on_tick(&mut self) {
        // Retransmit one copy per tick while unacknowledged; the receiver
        // needs capacity + 1 sightings before it delivers.
        if let Some(m) = self.pending {
            if self.outbox.is_empty() {
                self.emit_copy(m);
            }
        }
    }

    fn poll_send(&mut self) -> Option<Packet> {
        self.outbox.pop_front()
    }

    fn ready(&self) -> bool {
        self.pending.is_none()
    }

    fn space_bytes(&self) -> usize {
        // Counter + copies counter + pending flag; the unbounded counter is
        // the Θ(log n) space the impossibility results charge for.
        4 + 4 + 1 + self.outbox.len() * std::mem::size_of::<Packet>()
    }

    fn state_fingerprint(&self) -> u64 {
        StateHash::new("stab-dl-tx")
            .field(self.seq)
            .field(self.pending.is_some())
            .field(self.copies_sent)
            .finish()
    }

    fn clone_box(&self) -> BoxedTransmitter {
        Box::new(self.clone())
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn assign_from(&mut self, source: &dyn Transmitter) -> bool {
        match source.as_any().downcast_ref::<Self>() {
            Some(src) => {
                self.clone_from(src);
                true
            }
            None => false,
        }
    }
}

/// Receiver automaton of the stabilizing data-link protocol.
#[derive(Debug)]
pub struct StabilizingDlRx {
    capacity: u32,
    /// Last delivered counter; only counters above it are live.
    highest: u32,
    /// Sighting counts per full packet value, in a `BTreeMap` so iteration
    /// (pruning, fingerprinting) is deterministic.
    counts: BTreeMap<Packet, u32>,
    delivered: u64,
    outbox: VecDeque<Packet>,
    deliveries: VecDeque<Message>,
}

/// Manual `Clone` so `clone_from` reuses this automaton's buffers — the
/// explorer's system pool refills recycled automata in place via
/// `assign_from`, and the derived `clone_from` would reallocate instead.
impl Clone for StabilizingDlRx {
    fn clone(&self) -> Self {
        StabilizingDlRx {
            capacity: self.capacity,
            highest: self.highest,
            counts: self.counts.clone(),
            delivered: self.delivered,
            outbox: self.outbox.clone(),
            deliveries: self.deliveries.clone(),
        }
    }

    fn clone_from(&mut self, source: &Self) {
        self.capacity.clone_from(&source.capacity);
        self.highest.clone_from(&source.highest);
        self.counts.clone_from(&source.counts);
        self.delivered.clone_from(&source.delivered);
        self.outbox.clone_from(&source.outbox);
        self.deliveries.clone_from(&source.deliveries);
    }
}

impl StabilizingDlRx {
    /// Creates the automaton with the given counting capacity.
    pub fn new(capacity: u32) -> Self {
        assert!(capacity >= 1, "counting capacity must be at least 1");
        StabilizingDlRx {
            capacity,
            highest: 0,
            counts: BTreeMap::new(),
            delivered: 0,
            outbox: VecDeque::new(),
            deliveries: VecDeque::new(),
        }
    }

    /// The last delivered counter.
    pub fn highest(&self) -> u32 {
        self.highest
    }
}

impl Recoverable for StabilizingDlRx {
    fn crash_amnesia(&mut self) {
        crate::api::amnesia_reboot(self, Self::new(self.capacity));
    }
}

impl Receiver for StabilizingDlRx {
    fn on_receive_pkt(&mut self, p: Packet) {
        let c = p.header().index();
        if c > self.highest {
            let n = self.counts.entry(p).or_insert(0);
            *n += 1;
            // The DDPT threshold: strictly more copies than the channel
            // capacity can hold means at least one is a fresh send.
            if *n > self.capacity {
                let msg = match p.payload() {
                    Some(pl) => Message::with_payload(self.delivered, pl),
                    None => Message::identical(self.delivered),
                };
                self.deliveries.push_back(msg);
                self.delivered += 1;
                self.highest = c;
                // Counters at or below the new watermark are dead; dropping
                // their counts keeps state proportional to live junk.
                let highest = self.highest;
                self.counts.retain(|pkt, _| pkt.header().index() > highest);
            }
        }
        // Acknowledge with the last delivered counter (after any update, so
        // a completing round is confirmed immediately).
        self.outbox
            .push_back(Packet::header_only(Header::new(self.highest)));
    }

    fn poll_send(&mut self) -> Option<Packet> {
        self.outbox.pop_front()
    }

    fn poll_deliver(&mut self) -> Option<Message> {
        self.deliveries.pop_front()
    }

    fn space_bytes(&self) -> usize {
        4 + 4
            + 8
            + self.counts.len() * (std::mem::size_of::<Packet>() + 4)
            + self.outbox.len() * std::mem::size_of::<Packet>()
    }

    fn state_fingerprint(&self) -> u64 {
        let mut h = StateHash::new("stab-dl-rx").field(self.highest);
        for (pkt, n) in &self.counts {
            h = h.field(pkt).field(*n);
        }
        h.finish()
    }

    fn clone_box(&self) -> BoxedReceiver {
        Box::new(self.clone())
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn assign_from(&mut self, source: &dyn Receiver) -> bool {
        match source.as_any().downcast_ref::<Self>() {
            Some(src) => {
                self.clone_from(src);
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_round(tx: &mut BoxedTransmitter, rx: &mut BoxedReceiver, i: u64) {
        tx.on_send_msg(Message::identical(i));
        loop {
            if let Some(d) = tx.poll_send() {
                rx.on_receive_pkt(d);
            }
            while let Some(ack) = rx.poll_send() {
                tx.on_receive_pkt(ack);
            }
            if let Some(m) = rx.poll_deliver() {
                assert_eq!(m.id().raw(), i);
                assert!(tx.ready(), "ack should complete the round");
                return;
            }
            tx.on_tick();
        }
    }

    #[test]
    fn happy_path_delivers_after_capacity_plus_one_copies() {
        let (mut tx, mut rx) = StabilizingDl::new().make();
        for i in 0..3u64 {
            run_round(&mut tx, &mut rx, i);
        }
    }

    #[test]
    fn junk_below_threshold_never_delivers() {
        let mut rx = StabilizingDlRx::new(DEFAULT_CAPACITY);
        let junk = Packet::header_only(Header::new(77));
        for _ in 0..DEFAULT_CAPACITY {
            rx.on_receive_pkt(junk);
            assert!(rx.poll_deliver().is_none());
            // Still acks its watermark on every sighting.
            assert_eq!(rx.poll_send().unwrap().header(), Header::new(0));
        }
        // The capacity+1-th copy of the *same* value would deliver — that is
        // the resilience boundary, not a bug.
        rx.on_receive_pkt(junk);
        assert!(rx.poll_deliver().is_some());
    }

    #[test]
    fn distinct_junk_values_do_not_pool() {
        let mut rx = StabilizingDlRx::new(DEFAULT_CAPACITY);
        for h in 1..=20u32 {
            rx.on_receive_pkt(Packet::header_only(Header::new(h)));
        }
        assert!(rx.poll_deliver().is_none());
    }

    #[test]
    fn stale_ack_is_ignored_and_junk_ack_adopted_safely() {
        let mut tx = StabilizingDlTx::new(2);
        tx.on_send_msg(Message::identical(0)); // seq = 1
        assert_eq!(tx.poll_send().unwrap().header(), Header::new(1));
        // Stale ack (a < seq): ignored.
        tx.on_receive_pkt(Packet::header_only(Header::new(0)));
        assert!(!tx.ready());
        // Foreign higher ack with copies_sent = 1 ≤ capacity: adopt, re-key.
        tx.on_receive_pkt(Packet::header_only(Header::new(10)));
        assert_eq!(tx.seq(), 11);
        assert_eq!(tx.poll_send().unwrap().header(), Header::new(11));
        assert!(!tx.ready());
        // Completing ack for the new key.
        tx.on_receive_pkt(Packet::header_only(Header::new(11)));
        assert!(tx.ready());
    }

    #[test]
    fn adoption_refused_once_old_key_may_be_deliverable() {
        let capacity = 2;
        let mut tx = StabilizingDlTx::new(capacity);
        tx.on_send_msg(Message::identical(0));
        // Drain capacity + 1 copies: the old key is now deliverable.
        for _ in 0..capacity {
            assert!(tx.poll_send().is_some());
            tx.on_tick();
        }
        assert!(tx.poll_send().is_some());
        // A higher ack must now be refused (adoption could double-deliver).
        tx.on_receive_pkt(Packet::header_only(Header::new(10)));
        assert_eq!(tx.seq(), 1);
        assert!(!tx.ready());
    }

    #[test]
    fn idle_adoption_keeps_counters_fresh() {
        let mut tx = StabilizingDlTx::new(DEFAULT_CAPACITY);
        // Junk ack while idle: counter jumps so the next round is above it.
        tx.on_receive_pkt(Packet::header_only(Header::new(500)));
        assert_eq!(tx.seq(), 500);
        tx.on_send_msg(Message::identical(0));
        assert_eq!(tx.poll_send().unwrap().header(), Header::new(501));
    }

    #[test]
    fn adopted_counters_are_clamped() {
        let mut tx = StabilizingDlTx::new(DEFAULT_CAPACITY);
        tx.on_receive_pkt(Packet::header_only(Header::new(u32::MAX - 1)));
        assert_eq!(tx.seq(), COUNTER_CLAMP);
        tx.on_send_msg(Message::identical(0));
        tx.on_receive_pkt(Packet::header_only(Header::new(u32::MAX)));
        assert_eq!(tx.seq(), COUNTER_CLAMP + 1); // no wrap
    }

    #[test]
    fn delivered_counters_prune_dead_counts() {
        let mut rx = StabilizingDlRx::new(1);
        // Junk below the soon-to-move watermark.
        rx.on_receive_pkt(Packet::header_only(Header::new(2)));
        // Deliver counter 5 with 2 sightings (capacity 1).
        let five = Packet::header_only(Header::new(5));
        rx.on_receive_pkt(five);
        rx.on_receive_pkt(five);
        assert!(rx.poll_deliver().is_some());
        assert_eq!(rx.highest(), 5);
        assert!(rx.counts.is_empty(), "counts pruned: {:?}", rx.counts);
    }

    #[test]
    fn amnesia_resets_to_initial_state() {
        let (mut tx, mut rx) = StabilizingDl::new().make();
        run_round(&mut tx, &mut rx, 0);
        let fresh = StabilizingDl::new().make();
        tx.crash_amnesia();
        rx.crash_amnesia();
        assert_eq!(tx.state_fingerprint(), fresh.0.state_fingerprint());
        assert_eq!(rx.state_fingerprint(), fresh.1.state_fingerprint());
    }

    #[test]
    fn payload_is_carried() {
        let (mut tx, mut rx) = StabilizingDl::with_capacity(1).make();
        tx.on_send_msg(Message::with_payload(0, nonfifo_ioa::Payload::new(42)));
        rx.on_receive_pkt(tx.poll_send().unwrap());
        tx.on_tick();
        rx.on_receive_pkt(tx.poll_send().unwrap());
        let m = rx.poll_deliver().unwrap();
        assert_eq!(m.payload().map(|p| p.word()), Some(42));
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn rejects_zero_capacity() {
        let _ = StabilizingDl::with_capacity(0);
    }

    #[test]
    fn factory_metadata() {
        let proto = StabilizingDl::with_capacity(7);
        assert_eq!(proto.name(), "stabilizing-dl(c=7)");
        assert_eq!(proto.capacity(), 7);
        assert_eq!(proto.forward_headers(), HeaderBound::PerMessage);
        assert!(!proto.uses_ghosts());
    }
}
