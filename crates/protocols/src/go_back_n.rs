//! Go-Back-N: the classic cumulative-acknowledgement pipeline protocol.
//!
//! Unlike the selective-repeat [`SlidingWindow`](crate::SlidingWindow), the
//! receiver keeps no buffer: out-of-order packets are discarded and the
//! cumulative acknowledgement re-asserts the next expected number. The
//! header modulus is the classic minimum `w + 1`. Correct over FIFO (with
//! or without loss); even mild reordering costs goodput, and deep replay
//! aliases the modular numbers exactly as Theorem 3.1 predicts — the
//! falsifier breaks it like any bounded-header protocol.

use crate::api::{
    BoxedReceiver, BoxedTransmitter, DataLink, HeaderBound, Receiver, Recoverable, Transmitter,
};
use crate::sequence::varint_bytes;
use nonfifo_ioa::fingerprint::StateHash;
use nonfifo_ioa::{Header, Message, Packet, Payload};
use std::collections::VecDeque;

/// Factory for the Go-Back-N protocol.
///
/// # Example
///
/// ```
/// use nonfifo_protocols::{DataLink, GoBackN, HeaderBound};
///
/// let proto = GoBackN::new(4);
/// assert_eq!(proto.forward_headers(), HeaderBound::Fixed(5)); // M = w + 1
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GoBackN {
    window: u32,
}

impl GoBackN {
    /// Creates a factory with window size `window` (modulus `window + 1`).
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    pub fn new(window: u32) -> Self {
        assert!(window >= 1, "window must be at least 1");
        GoBackN { window }
    }

    /// The window size `w`.
    pub fn window(&self) -> u32 {
        self.window
    }

    /// The header modulus `M = w + 1`.
    pub fn modulus(&self) -> u32 {
        self.window + 1
    }
}

impl DataLink for GoBackN {
    fn name(&self) -> String {
        format!("go-back-n(w={})", self.window)
    }

    fn forward_headers(&self) -> HeaderBound {
        HeaderBound::Fixed(self.modulus())
    }

    fn make(&self) -> (BoxedTransmitter, BoxedReceiver) {
        (
            Box::new(GoBackNTx::new(self.window)),
            Box::new(GoBackNRx::new(self.window)),
        )
    }
}

/// Transmitter automaton of Go-Back-N.
#[derive(Debug)]
pub struct GoBackNTx {
    window: u64,
    modulus: u64,
    base: u64,
    next: u64,
    unacked: VecDeque<Option<Payload>>,
    outbox: VecDeque<Packet>,
}

/// Manual `Clone` so `clone_from` reuses this automaton's buffers — the
/// explorer's system pool refills recycled automata in place via
/// `assign_from`, and the derived `clone_from` would reallocate instead.
impl Clone for GoBackNTx {
    fn clone(&self) -> Self {
        GoBackNTx {
            window: self.window,
            modulus: self.modulus,
            base: self.base,
            next: self.next,
            unacked: self.unacked.clone(),
            outbox: self.outbox.clone(),
        }
    }

    fn clone_from(&mut self, source: &Self) {
        self.window.clone_from(&source.window);
        self.modulus.clone_from(&source.modulus);
        self.base.clone_from(&source.base);
        self.next.clone_from(&source.next);
        self.unacked.clone_from(&source.unacked);
        self.outbox.clone_from(&source.outbox);
    }
}

impl GoBackNTx {
    /// Creates the automaton with window `w`.
    pub fn new(window: u32) -> Self {
        assert!(window >= 1, "window must be at least 1");
        GoBackNTx {
            window: u64::from(window),
            modulus: u64::from(window) + 1,
            base: 0,
            next: 0,
            unacked: VecDeque::new(),
            outbox: VecDeque::new(),
        }
    }

    /// Oldest unacknowledged full sequence number.
    pub fn base(&self) -> u64 {
        self.base
    }

    fn packet_for(&self, seq: u64, payload: Option<Payload>) -> Packet {
        let h = Header::new((seq % self.modulus) as u32);
        match payload {
            Some(p) => Packet::new(h, p),
            None => Packet::header_only(h),
        }
    }
}

impl Recoverable for GoBackNTx {
    fn crash_amnesia(&mut self) {
        crate::api::amnesia_reboot(self, GoBackNTx::new(self.window as u32));
    }
}

impl Transmitter for GoBackNTx {
    fn on_send_msg(&mut self, m: Message) {
        debug_assert!(self.ready(), "send_msg while window full");
        let seq = self.next;
        self.next += 1;
        self.unacked.push_back(m.payload());
        let pkt = self.packet_for(seq, m.payload());
        self.outbox.push_back(pkt);
    }

    fn on_receive_pkt(&mut self, p: Packet) {
        // Cumulative ack: the receiver's next expected number, mod M.
        let a = u64::from(p.header().index());
        let delta = (a + self.modulus - self.base % self.modulus) % self.modulus;
        if delta > 0 && delta <= self.next - self.base {
            self.base += delta;
            for _ in 0..delta {
                self.unacked.pop_front();
            }
        }
    }

    fn on_tick(&mut self) {
        // Go-back: retransmit the whole outstanding window.
        if self.outbox.is_empty() {
            let resend: Vec<Packet> = self
                .unacked
                .iter()
                .enumerate()
                .map(|(i, &payload)| self.packet_for(self.base + i as u64, payload))
                .collect();
            self.outbox.extend(resend);
        }
    }

    fn poll_send(&mut self) -> Option<Packet> {
        self.outbox.pop_front()
    }

    fn ready(&self) -> bool {
        self.next - self.base < self.window
    }

    fn space_bytes(&self) -> usize {
        varint_bytes(self.base)
            + varint_bytes(self.next)
            + self.unacked.len() * 9
            + self.outbox.len() * std::mem::size_of::<Packet>()
    }

    fn state_fingerprint(&self) -> u64 {
        StateHash::new("gbn-tx")
            .field(self.base)
            .field(self.next)
            .finish()
    }

    fn clone_box(&self) -> BoxedTransmitter {
        Box::new(self.clone())
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn assign_from(&mut self, source: &dyn Transmitter) -> bool {
        match source.as_any().downcast_ref::<Self>() {
            Some(src) => {
                self.clone_from(src);
                true
            }
            None => false,
        }
    }
}

/// Receiver automaton of Go-Back-N: no reorder buffer.
#[derive(Debug)]
pub struct GoBackNRx {
    modulus: u64,
    next_expected: u64,
    outbox: VecDeque<Packet>,
    deliveries: VecDeque<Message>,
}

/// Manual `Clone` so `clone_from` reuses this automaton's buffers — the
/// explorer's system pool refills recycled automata in place via
/// `assign_from`, and the derived `clone_from` would reallocate instead.
impl Clone for GoBackNRx {
    fn clone(&self) -> Self {
        GoBackNRx {
            modulus: self.modulus,
            next_expected: self.next_expected,
            outbox: self.outbox.clone(),
            deliveries: self.deliveries.clone(),
        }
    }

    fn clone_from(&mut self, source: &Self) {
        self.modulus.clone_from(&source.modulus);
        self.next_expected.clone_from(&source.next_expected);
        self.outbox.clone_from(&source.outbox);
        self.deliveries.clone_from(&source.deliveries);
    }
}

impl GoBackNRx {
    /// Creates the automaton with window `w`.
    pub fn new(window: u32) -> Self {
        assert!(window >= 1, "window must be at least 1");
        GoBackNRx {
            modulus: u64::from(window) + 1,
            next_expected: 0,
            outbox: VecDeque::new(),
            deliveries: VecDeque::new(),
        }
    }

    /// Next full sequence number the receiver will deliver.
    pub fn next_expected(&self) -> u64 {
        self.next_expected
    }
}

impl Recoverable for GoBackNRx {
    fn crash_amnesia(&mut self) {
        crate::api::amnesia_reboot(self, GoBackNRx::new((self.modulus - 1) as u32));
    }
}

impl Receiver for GoBackNRx {
    fn on_receive_pkt(&mut self, p: Packet) {
        let s = u64::from(p.header().index());
        if s == self.next_expected % self.modulus {
            let msg = match p.payload() {
                Some(pl) => Message::with_payload(self.next_expected, pl),
                None => Message::identical(self.next_expected),
            };
            self.deliveries.push_back(msg);
            self.next_expected += 1;
        }
        // Cumulative ack either way.
        self.outbox.push_back(Packet::header_only(Header::new(
            (self.next_expected % self.modulus) as u32,
        )));
    }

    fn poll_send(&mut self) -> Option<Packet> {
        self.outbox.pop_front()
    }

    fn poll_deliver(&mut self) -> Option<Message> {
        self.deliveries.pop_front()
    }

    fn space_bytes(&self) -> usize {
        varint_bytes(self.next_expected) + self.outbox.len() * std::mem::size_of::<Packet>()
    }

    fn state_fingerprint(&self) -> u64 {
        StateHash::new("gbn-rx").field(self.next_expected).finish()
    }

    fn clone_box(&self) -> BoxedReceiver {
        Box::new(self.clone())
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn assign_from(&mut self, source: &dyn Receiver) -> bool {
        match source.as_any().downcast_ref::<Self>() {
            Some(src) => {
                self.clone_from(src);
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_over_perfect_channel() {
        let mut tx = GoBackNTx::new(4);
        let mut rx = GoBackNRx::new(4);
        let mut delivered = 0u64;
        let mut sent = 0u64;
        while delivered < 20 {
            while tx.ready() && sent < 20 {
                tx.on_send_msg(Message::identical(sent));
                sent += 1;
            }
            while let Some(d) = tx.poll_send() {
                rx.on_receive_pkt(d);
            }
            while let Some(m) = rx.poll_deliver() {
                assert_eq!(m.id().raw(), delivered);
                delivered += 1;
            }
            while let Some(a) = rx.poll_send() {
                tx.on_receive_pkt(a);
            }
            tx.on_tick();
        }
        assert_eq!(tx.base(), 20);
    }

    #[test]
    fn out_of_order_is_discarded_not_buffered() {
        let mut tx = GoBackNTx::new(3);
        let mut rx = GoBackNRx::new(3);
        tx.on_send_msg(Message::identical(0));
        tx.on_send_msg(Message::identical(1));
        let d0 = tx.poll_send().unwrap();
        let d1 = tx.poll_send().unwrap();
        rx.on_receive_pkt(d1);
        assert!(rx.poll_deliver().is_none());
        // The cumulative ack still says "expecting 0".
        assert_eq!(rx.poll_send().unwrap().header().index(), 0);
        rx.on_receive_pkt(d0);
        assert_eq!(rx.poll_deliver().unwrap().id().raw(), 0);
        // d1 was dropped; only a retransmission will deliver message 1.
        assert!(rx.poll_deliver().is_none());
        tx.on_tick();
        let _re0_or_1 = tx.poll_send().unwrap();
    }

    #[test]
    fn go_back_retransmits_whole_window() {
        let mut tx = GoBackNTx::new(3);
        tx.on_send_msg(Message::identical(0));
        tx.on_send_msg(Message::identical(1));
        tx.on_send_msg(Message::identical(2));
        while tx.poll_send().is_some() {}
        tx.on_tick();
        let mut resent = 0;
        while tx.poll_send().is_some() {
            resent += 1;
        }
        assert_eq!(resent, 3, "go-back-n resends the full window");
    }

    #[test]
    fn loss_recovery_end_to_end() {
        let mut tx = GoBackNTx::new(2);
        let mut rx = GoBackNRx::new(2);
        tx.on_send_msg(Message::identical(0));
        let _lost = tx.poll_send();
        tx.on_tick();
        rx.on_receive_pkt(tx.poll_send().unwrap());
        assert!(rx.poll_deliver().is_some());
        tx.on_receive_pkt(rx.poll_send().unwrap());
        assert_eq!(tx.base(), 1);
    }

    #[test]
    fn modulus_is_w_plus_one() {
        assert_eq!(GoBackN::new(7).modulus(), 8);
        assert_eq!(GoBackN::new(7).forward_headers(), HeaderBound::Fixed(8));
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn rejects_zero_window() {
        let _ = GoBackN::new(0);
    }
}
