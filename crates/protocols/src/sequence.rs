//! The paper's "naive protocol": deliver the `i`-th message with the `i`-th
//! header.
//!
//! Uses `n` forward headers for `n` messages and `O(log n)` space — the
//! contrast the paper draws against every bounded-header protocol
//! ("In contrast, the naive protocol … uses n headers to deliver n messages
//! in O(log n) space"). It is safe over *any* PL1 channel, adversarial or
//! not: stale copies carry old sequence numbers and are simply ignored, so
//! the Theorem 3.1 falsifier can never hurt it (experiment E3's negative
//! control).

use crate::api::{
    BoxedReceiver, BoxedTransmitter, DataLink, HeaderBound, Receiver, Recoverable, Transmitter,
};
use nonfifo_ioa::fingerprint::StateHash;
use nonfifo_ioa::{Header, Message, Packet};
use std::collections::VecDeque;

/// Number of bytes to store `x` in a variable-length encoding — the honest
/// size of an unbounded counter, so `space_bytes` grows like `log n`.
pub(crate) fn varint_bytes(x: u64) -> usize {
    (64 - u64::leading_zeros(x.max(1)) as usize).div_ceil(7)
}

/// Factory for the stop-and-wait sequence-number protocol.
///
/// # Example
///
/// ```
/// use nonfifo_protocols::{DataLink, HeaderBound, SequenceNumber};
///
/// let proto = SequenceNumber::new();
/// assert_eq!(proto.forward_headers(), HeaderBound::PerMessage);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SequenceNumber;

impl SequenceNumber {
    /// Creates the factory.
    pub fn new() -> Self {
        SequenceNumber
    }

    /// Alias for [`SequenceNumber::new`].
    pub fn factory() -> Self {
        SequenceNumber
    }
}

impl DataLink for SequenceNumber {
    fn name(&self) -> String {
        "sequence-number".into()
    }

    fn forward_headers(&self) -> HeaderBound {
        HeaderBound::PerMessage
    }

    fn make(&self) -> (BoxedTransmitter, BoxedReceiver) {
        (
            Box::new(SequenceNumberTx::new()),
            Box::new(SequenceNumberRx::new()),
        )
    }
}

/// Transmitter automaton of the sequence-number protocol.
#[derive(Debug)]
pub struct SequenceNumberTx {
    seq: u64,
    pending: Option<Message>,
    outbox: VecDeque<Packet>,
}

/// Manual `Clone` so `clone_from` reuses this automaton's buffers — the
/// explorer's system pool refills recycled automata in place via
/// `assign_from`, and the derived `clone_from` would reallocate instead.
impl Clone for SequenceNumberTx {
    fn clone(&self) -> Self {
        SequenceNumberTx {
            seq: self.seq,
            pending: self.pending,
            outbox: self.outbox.clone(),
        }
    }

    fn clone_from(&mut self, source: &Self) {
        self.seq.clone_from(&source.seq);
        self.pending.clone_from(&source.pending);
        self.outbox.clone_from(&source.outbox);
    }
}

impl SequenceNumberTx {
    /// Creates the automaton at sequence number 0.
    pub fn new() -> Self {
        SequenceNumberTx {
            seq: 0,
            pending: None,
            outbox: VecDeque::new(),
        }
    }

    /// The next sequence number to be assigned.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    fn data_packet(&self, m: Message) -> Packet {
        let h = Header::new(self.seq as u32);
        match m.payload() {
            Some(p) => Packet::new(h, p),
            None => Packet::header_only(h),
        }
    }
}

impl Default for SequenceNumberTx {
    fn default() -> Self {
        SequenceNumberTx::new()
    }
}

impl Recoverable for SequenceNumberTx {
    fn crash_amnesia(&mut self) {
        *self = SequenceNumberTx::new();
    }
}

impl Transmitter for SequenceNumberTx {
    fn on_send_msg(&mut self, m: Message) {
        debug_assert!(self.pending.is_none(), "send_msg while not ready");
        self.pending = Some(m);
        let pkt = self.data_packet(m);
        self.outbox.push_back(pkt);
    }

    fn on_receive_pkt(&mut self, p: Packet) {
        if self.pending.is_some() && u64::from(p.header().index()) == self.seq {
            self.pending = None;
            self.seq += 1;
        }
    }

    fn on_tick(&mut self) {
        if let Some(m) = self.pending {
            if self.outbox.is_empty() {
                let pkt = self.data_packet(m);
                self.outbox.push_back(pkt);
            }
        }
    }

    fn header_retired(&self, h: Header) -> bool {
        // `seq` only grows and `on_receive_pkt` compares for equality, so
        // an ack below the current number is ignored for the rest of time.
        u64::from(h.index()) < self.seq
    }

    fn poll_send(&mut self) -> Option<Packet> {
        self.outbox.pop_front()
    }

    fn ready(&self) -> bool {
        self.pending.is_none()
    }

    fn space_bytes(&self) -> usize {
        varint_bytes(self.seq) + 1 + self.outbox.len() * std::mem::size_of::<Packet>()
    }

    fn state_fingerprint(&self) -> u64 {
        StateHash::new("seqnum-tx")
            .field(self.seq)
            .field(self.pending.is_some())
            .finish()
    }

    fn clone_box(&self) -> BoxedTransmitter {
        Box::new(self.clone())
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn assign_from(&mut self, source: &dyn Transmitter) -> bool {
        match source.as_any().downcast_ref::<Self>() {
            Some(src) => {
                self.clone_from(src);
                true
            }
            None => false,
        }
    }
}

/// Receiver automaton of the sequence-number protocol.
#[derive(Debug)]
pub struct SequenceNumberRx {
    next_expected: u64,
    outbox: VecDeque<Packet>,
    deliveries: VecDeque<Message>,
}

/// Manual `Clone` so `clone_from` reuses this automaton's buffers — the
/// explorer's system pool refills recycled automata in place via
/// `assign_from`, and the derived `clone_from` would reallocate instead.
impl Clone for SequenceNumberRx {
    fn clone(&self) -> Self {
        SequenceNumberRx {
            next_expected: self.next_expected,
            outbox: self.outbox.clone(),
            deliveries: self.deliveries.clone(),
        }
    }

    fn clone_from(&mut self, source: &Self) {
        self.next_expected.clone_from(&source.next_expected);
        self.outbox.clone_from(&source.outbox);
        self.deliveries.clone_from(&source.deliveries);
    }
}

impl SequenceNumberRx {
    /// Creates the automaton expecting sequence number 0.
    pub fn new() -> Self {
        SequenceNumberRx {
            next_expected: 0,
            outbox: VecDeque::new(),
            deliveries: VecDeque::new(),
        }
    }

    /// The sequence number the receiver expects next.
    pub fn next_expected(&self) -> u64 {
        self.next_expected
    }
}

impl Default for SequenceNumberRx {
    fn default() -> Self {
        SequenceNumberRx::new()
    }
}

impl Recoverable for SequenceNumberRx {
    fn crash_amnesia(&mut self) {
        *self = SequenceNumberRx::new();
    }
}

impl Receiver for SequenceNumberRx {
    fn on_receive_pkt(&mut self, p: Packet) {
        // Acknowledge the sequence number we saw (idempotent for stale
        // copies — the transmitter ignores acks for anything but its
        // current number).
        self.outbox.push_back(Packet::header_only(p.header()));
        if u64::from(p.header().index()) == self.next_expected {
            let msg = match p.payload() {
                Some(pl) => Message::with_payload(self.next_expected, pl),
                None => Message::identical(self.next_expected),
            };
            self.deliveries.push_back(msg);
            self.next_expected += 1;
        }
    }

    fn header_retired(&self, h: Header) -> bool {
        // `next_expected` only grows: a data packet numbered below it can
        // never be delivered again, only re-acknowledged — and the ack it
        // echoes carries the same retired number.
        u64::from(h.index()) < self.next_expected
    }

    fn poll_send(&mut self) -> Option<Packet> {
        self.outbox.pop_front()
    }

    fn poll_deliver(&mut self) -> Option<Message> {
        self.deliveries.pop_front()
    }

    fn space_bytes(&self) -> usize {
        varint_bytes(self.next_expected) + self.outbox.len() * std::mem::size_of::<Packet>()
    }

    fn state_fingerprint(&self) -> u64 {
        StateHash::new("seqnum-rx")
            .field(self.next_expected)
            .finish()
    }

    fn clone_box(&self) -> BoxedReceiver {
        Box::new(self.clone())
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn assign_from(&mut self, source: &dyn Receiver) -> bool {
        match source.as_any().downcast_ref::<Self>() {
            Some(src) => {
                self.clone_from(src);
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nonfifo_ioa::Payload;

    #[test]
    fn delivers_over_perfect_channel() {
        let (mut tx, mut rx) = SequenceNumber::new().make();
        for i in 0..10u64 {
            tx.on_send_msg(Message::with_payload(i, Payload::new(i * 10)));
            let d = tx.poll_send().unwrap();
            assert_eq!(u64::from(d.header().index()), i);
            rx.on_receive_pkt(d);
            let m = rx.poll_deliver().unwrap();
            assert_eq!(m.payload().map(|p| p.word()), Some(i * 10));
            tx.on_receive_pkt(rx.poll_send().unwrap());
        }
    }

    #[test]
    fn stale_copies_are_harmless() {
        let mut tx = SequenceNumberTx::new();
        let mut rx = SequenceNumberRx::new();
        // Deliver messages 0 and 1, keeping a stale copy of each.
        let mut stale = Vec::new();
        for i in 0..2u64 {
            tx.on_send_msg(Message::identical(i));
            let fresh = tx.poll_send().unwrap();
            tx.on_tick();
            stale.push(tx.poll_send().unwrap());
            rx.on_receive_pkt(fresh);
            rx.poll_deliver().unwrap();
            tx.on_receive_pkt(rx.poll_send().unwrap());
            let _ = rx.poll_send();
        }
        // Replay every stale copy: no phantom deliveries, ever.
        for s in stale {
            rx.on_receive_pkt(s);
            assert!(rx.poll_deliver().is_none());
        }
        assert_eq!(rx.next_expected(), 2);
    }

    #[test]
    fn stale_acks_are_harmless() {
        let mut tx = SequenceNumberTx::new();
        tx.on_send_msg(Message::identical(0));
        let _ = tx.poll_send();
        tx.on_receive_pkt(Packet::header_only(Header::new(0)));
        assert!(tx.ready());
        tx.on_send_msg(Message::identical(1));
        // A replayed ack for 0 must not complete message 1.
        tx.on_receive_pkt(Packet::header_only(Header::new(0)));
        assert!(!tx.ready());
    }

    #[test]
    fn space_grows_logarithmically() {
        assert_eq!(varint_bytes(0), 1);
        assert_eq!(varint_bytes(127), 1);
        assert_eq!(varint_bytes(128), 2);
        assert_eq!(varint_bytes(u64::MAX), 10);
        let mut tx = SequenceNumberTx::new();
        let s_small = tx.space_bytes();
        tx.seq = 1 << 40;
        assert!(tx.space_bytes() > s_small);
        assert!(tx.space_bytes() < s_small + 8);
    }

    #[test]
    fn retransmission_pacing() {
        let mut tx = SequenceNumberTx::new();
        tx.on_send_msg(Message::identical(0));
        assert!(tx.poll_send().is_some());
        assert!(tx.poll_send().is_none());
        tx.on_tick();
        tx.on_tick();
        // One retransmission per tick at most, queued lazily.
        assert!(tx.poll_send().is_some());
        assert!(tx.poll_send().is_none());
    }
}
