//! Data-link protocol implementations for the `nonfifo` reproduction of
//! Mansour & Schieber (PODC 1989).
//!
//! Every protocol is a pair of deterministic I/O automata implementing
//! [`Transmitter`] and [`Receiver`]. The workspace's channels, adversaries,
//! and simulation engine compose them into the closed system of the paper's
//! Figure 1 (`Aᵗ ∥ PLᵗ→ʳ ∥ PLʳ→ᵗ ∥ Aʳ`).
//!
//! | Protocol | Forward headers | Safe over | Per-message cost | Role |
//! |----------|-----------------|-----------|------------------|------|
//! | [`AlternatingBit`] | 2 | lossy FIFO | O(1) | classic baseline \[BSW69\]; broken on non-FIFO (E8) |
//! | [`NaiveCycle`] | k | FIFO only | O(1) | the canonical falsifier victim (E2) |
//! | [`SequenceNumber`] | n (one per message) | any PL1 channel | O(1) | the paper's "naive protocol": n headers, O(log n) space (E3) |
//! | [`SlidingWindow`] | 2·w | reorder < window | O(1) | how practice escapes the bounds (E9) |
//! | [`GoBackN`] | w+1 | FIFO (with loss) | O(1) amortised | classic cumulative-ack pipeline; reorder-fragile baseline |
//! | [`SelectiveReject`] | 2·w (+2·w NAKs backward) | FIFO (with loss) | O(1), loss-frugal | NAK-driven ARQ; most packet-efficient of the classic trio |
//! | [`Outnumber`] | L (default 5) | probabilistic, q < ½ | exponential in n | reconstruction of \[AFWZ88\] (E5) |
//! | [`AfekFlush`] | 3 | any PL1 channel (ghost-assisted) | Θ(in-transit) | reconstruction of \[Afe88\], tightness of Theorem 4.1 (E4) |
//! | [`StabilizingDl`] | n (one per round) | any PL1 channel, **from any initial state** | capacity + 1 copies | self-stabilizing counting protocol after DDPT arXiv:1011.3632 (E16) |
//!
//! ## The forward/backward asymmetry
//!
//! The paper counts headers on the transmitter-to-receiver channel: all
//! three proofs replay only forward packets, and in each simulation argument
//! the receiver re-sends its acknowledgements fresh, so the backward
//! alphabet never enters the counting. The bounded-header reconstructions
//! here therefore use *indexed* acknowledgements (unbounded backward
//! headers) without weakening any theorem — the lower bounds still bite on
//! the forward channel, which is where these protocols pay.
//!
//! ## Ghost information
//!
//! Two reconstructions ([`AfekFlush`], and [`Outnumber`] only for its
//! diagnostics) consume [`GhostInfo`], a harness-computed summary of channel
//! state (exact stale-copy counts). This substitutes for unavailable
//! mechanisms in the cited unpublished protocols while preserving their
//! packet-cost profiles; see `DESIGN.md` §2 for the substitution argument.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod afek;
mod alternating_bit;
mod api;
pub mod catalog;
mod go_back_n;
mod naive_cycle;
mod outnumber;
mod selective_reject;
mod sequence;
mod sliding_window;
mod stabilizing_dl;

pub use afek::{AfekFlush, AfekFlushRx, AfekFlushTx};
pub use alternating_bit::{AlternatingBit, AlternatingBitRx, AlternatingBitTx};
pub use api::{
    amnesia_reboot, BoxedReceiver, BoxedTransmitter, DataLink, GhostInfo, HeaderBound, Receiver,
    Recoverable, Transmitter,
};
pub use go_back_n::{GoBackN, GoBackNRx, GoBackNTx};
pub use naive_cycle::{NaiveCycle, NaiveCycleRx, NaiveCycleTx};
pub use outnumber::{Outnumber, OutnumberRx, OutnumberTx};
pub use selective_reject::{SelectiveReject, SelectiveRejectRx, SelectiveRejectTx};
pub use sequence::{SequenceNumber, SequenceNumberRx, SequenceNumberTx};
pub use sliding_window::{SlidingWindow, SlidingWindowRx, SlidingWindowTx};
pub use stabilizing_dl::{StabilizingDl, StabilizingDlRx, StabilizingDlTx, DEFAULT_CAPACITY};
