//! Reconstruction of the three-header protocol of [Afe88]
//! (Y. Afek, personal communication, 1988 — cited by the paper as the tight
//! upper bound for Theorem 4.1, never published).
//!
//! ## Mechanism
//!
//! Message `i` travels as label `i mod 3`. The receiver delivers the
//! expected label only once it has counted *more* copies of it than the
//! stale population of that label — the copies that were already delayed on
//! the forward channel when the current message was handed over. Any rule
//! that fires at or below the stale count is adversarially unsafe (the
//! channel can replay exactly that many stale copies), and our own
//! Theorem 4.1 falsifier demonstrates as much against
//! [`NaiveCycle`](crate::NaiveCycle); `stale + 1` is therefore the minimal
//! safe threshold, and it makes the per-message packet cost **linear in the
//! number of packets in transit** — exactly the property the paper credits
//! to [Afe88] ("In [Afe88] the dependency was improved to be linear in the
//! number of packets that are delayed on the channel at the time the
//! message is sent. Our second lower bound shows that this the best one can
//! do.").
//!
//! ## The ghost substitution
//!
//! The receiver learns the stale count from [`GhostInfo`], a
//! harness-computed oracle, because the original protocol's internal
//! mechanism is unavailable (the citation is a personal communication).
//! The substitution preserves the two properties the paper uses: the
//! three-header forward alphabet, and the Θ(in-transit) per-message cost
//! that witnesses the tightness of Theorem 4.1 (experiment E4). Safety is
//! genuine given a correct oracle: a delivery implies at least one *fresh*
//! copy arrived. The threshold snapshot is taken at the first ghost push of
//! each round and copies received before that push are not counted, so the
//! count-vs-snapshot comparison is sound even though the stale population
//! shrinks as stale copies get delivered.
//!
//! Like [`Outnumber`](crate::Outnumber), the protocol implements the
//! identical-message service and ignores payloads.

use crate::api::{
    BoxedReceiver, BoxedTransmitter, DataLink, GhostInfo, HeaderBound, Receiver, Recoverable,
    Transmitter,
};
use crate::sequence::varint_bytes;
use nonfifo_ioa::fingerprint::StateHash;
use nonfifo_ioa::{Header, Message, Packet};
use std::collections::VecDeque;

/// Factory for the flush protocol (\[Afe88\] uses three labels; the label
/// count is a parameter here so experiment E4 can sweep `k` and watch the
/// cost slope track `1/k`).
///
/// # Example
///
/// ```
/// use nonfifo_protocols::{AfekFlush, DataLink, HeaderBound};
///
/// let proto = AfekFlush::new();
/// assert_eq!(proto.forward_headers(), HeaderBound::Fixed(3));
/// assert_eq!(AfekFlush::with_labels(5).forward_headers(), HeaderBound::Fixed(5));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AfekFlush {
    labels: u32,
}

impl Default for AfekFlush {
    fn default() -> Self {
        AfekFlush::new()
    }
}

impl AfekFlush {
    /// Creates the classic three-label factory.
    pub fn new() -> Self {
        AfekFlush { labels: 3 }
    }

    /// Creates a factory with `labels` forward headers.
    ///
    /// # Panics
    ///
    /// Panics if `labels < 3` (two labels cannot separate three
    /// consecutive rounds).
    pub fn with_labels(labels: u32) -> Self {
        assert!(
            labels >= 3,
            "flush protocol needs at least 3 labels, got {labels}"
        );
        AfekFlush { labels }
    }

    /// Alias for [`AfekFlush::new`].
    pub fn factory() -> Self {
        AfekFlush::new()
    }

    /// The number of forward labels `k`.
    pub fn labels(&self) -> u32 {
        self.labels
    }
}

impl DataLink for AfekFlush {
    fn name(&self) -> String {
        format!("afek-flush({})", self.labels)
    }

    fn forward_headers(&self) -> HeaderBound {
        HeaderBound::Fixed(self.labels)
    }

    fn make(&self) -> (BoxedTransmitter, BoxedReceiver) {
        (
            Box::new(AfekFlushTx::new(self.labels)),
            Box::new(AfekFlushRx::new(self.labels)),
        )
    }

    fn uses_ghosts(&self) -> bool {
        true
    }
}

/// Transmitter automaton of the flush protocol.
#[derive(Debug)]
pub struct AfekFlushTx {
    labels: u64,
    /// Index of the current (or next) message, 0-based.
    idx: u64,
    pending: bool,
    total_sent: u64,
    outbox: VecDeque<Packet>,
}

/// Manual `Clone` so `clone_from` reuses this automaton's buffers — the
/// explorer's system pool refills recycled automata in place via
/// `assign_from`, and the derived `clone_from` would reallocate instead.
impl Clone for AfekFlushTx {
    fn clone(&self) -> Self {
        AfekFlushTx {
            labels: self.labels,
            idx: self.idx,
            pending: self.pending,
            total_sent: self.total_sent,
            outbox: self.outbox.clone(),
        }
    }

    fn clone_from(&mut self, source: &Self) {
        self.labels.clone_from(&source.labels);
        self.idx.clone_from(&source.idx);
        self.pending.clone_from(&source.pending);
        self.total_sent.clone_from(&source.total_sent);
        self.outbox.clone_from(&source.outbox);
    }
}

impl AfekFlushTx {
    /// Creates the automaton with `labels` forward headers.
    pub fn new(labels: u32) -> Self {
        AfekFlushTx {
            labels: u64::from(labels),
            idx: 0,
            pending: false,
            total_sent: 0,
            outbox: VecDeque::new(),
        }
    }

    /// Total data copies sent so far.
    pub fn total_sent(&self) -> u64 {
        self.total_sent
    }

    fn enqueue_data(&mut self) {
        let pkt = Packet::header_only(Header::new((self.idx % self.labels) as u32));
        self.outbox.push_back(pkt);
        self.total_sent += 1;
    }
}

impl Recoverable for AfekFlushTx {
    fn crash_amnesia(&mut self) {
        self.idx = 0;
        self.pending = false;
        self.total_sent = 0;
        self.outbox.clear();
    }
}

impl Transmitter for AfekFlushTx {
    fn on_send_msg(&mut self, _m: Message) {
        debug_assert!(!self.pending, "send_msg while not ready");
        self.pending = true;
        self.enqueue_data();
    }

    fn on_receive_pkt(&mut self, p: Packet) {
        if self.pending && u64::from(p.header().index()) == self.idx {
            self.pending = false;
            self.idx += 1;
        }
    }

    fn on_tick(&mut self) {
        if self.pending && self.outbox.is_empty() {
            self.enqueue_data();
        }
    }

    fn poll_send(&mut self) -> Option<Packet> {
        self.outbox.pop_front()
    }

    fn ready(&self) -> bool {
        !self.pending
    }

    fn space_bytes(&self) -> usize {
        varint_bytes(self.idx) + 1 + self.outbox.len() * std::mem::size_of::<Packet>()
    }

    fn state_fingerprint(&self) -> u64 {
        StateHash::new("afek-tx")
            .field(self.idx)
            .field(self.pending)
            .finish()
    }

    fn clone_box(&self) -> BoxedTransmitter {
        Box::new(self.clone())
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn assign_from(&mut self, source: &dyn Transmitter) -> bool {
        match source.as_any().downcast_ref::<Self>() {
            Some(src) => {
                self.clone_from(src);
                true
            }
            None => false,
        }
    }
}

/// Receiver automaton of the flush protocol.
#[derive(Debug)]
pub struct AfekFlushRx {
    labels: u64,
    /// Next undelivered message index, 0-based.
    next: u64,
    /// Copies of the expected label counted this round (only after the
    /// round's stale snapshot was taken).
    counted: u64,
    /// Stale population of the expected label, snapshotted at the first
    /// ghost push of the round; `None` until that push arrives.
    stale_snapshot: Option<u64>,
    outbox: VecDeque<Packet>,
    deliveries: VecDeque<Message>,
}

/// Manual `Clone` so `clone_from` reuses this automaton's buffers — the
/// explorer's system pool refills recycled automata in place via
/// `assign_from`, and the derived `clone_from` would reallocate instead.
impl Clone for AfekFlushRx {
    fn clone(&self) -> Self {
        AfekFlushRx {
            labels: self.labels,
            next: self.next,
            counted: self.counted,
            stale_snapshot: self.stale_snapshot,
            outbox: self.outbox.clone(),
            deliveries: self.deliveries.clone(),
        }
    }

    fn clone_from(&mut self, source: &Self) {
        self.labels.clone_from(&source.labels);
        self.next.clone_from(&source.next);
        self.counted.clone_from(&source.counted);
        self.stale_snapshot.clone_from(&source.stale_snapshot);
        self.outbox.clone_from(&source.outbox);
        self.deliveries.clone_from(&source.deliveries);
    }
}

impl AfekFlushRx {
    /// Creates the automaton with `labels` forward headers.
    pub fn new(labels: u32) -> Self {
        AfekFlushRx {
            labels: u64::from(labels),
            next: 0,
            counted: 0,
            stale_snapshot: None,
            outbox: VecDeque::new(),
            deliveries: VecDeque::new(),
        }
    }

    /// The stale snapshot currently gating delivery, if taken.
    pub fn stale_snapshot(&self) -> Option<u64> {
        self.stale_snapshot
    }

    fn expected_header(&self) -> Header {
        Header::new((self.next % self.labels) as u32)
    }

    fn ack(&mut self, index: u64) {
        self.outbox
            .push_back(Packet::header_only(Header::new(index as u32)));
    }
}

impl Recoverable for AfekFlushRx {
    fn crash_amnesia(&mut self) {
        self.next = 0;
        self.counted = 0;
        self.stale_snapshot = None;
        self.outbox.clear();
        self.deliveries.clear();
    }
}

impl Receiver for AfekFlushRx {
    fn on_receive_pkt(&mut self, p: Packet) {
        let expected = self.expected_header();
        if p.header() == expected {
            if let Some(stale) = self.stale_snapshot {
                self.counted += 1;
                if self.counted > stale {
                    self.deliveries.push_back(Message::identical(self.next));
                    self.next += 1;
                    self.counted = 0;
                    self.stale_snapshot = None;
                    self.ack(self.next - 1);
                }
            }
            // Copies before the round's first ghost push are not counted:
            // the snapshot comparison would be unsound (see module docs).
        } else if self.next > 0 && u64::from(p.header().index()) == (self.next - 1) % self.labels {
            // Duplicate of the delivered message's label — re-ack.
            self.ack(self.next - 1);
        }
    }

    fn on_ghost(&mut self, ghost: &GhostInfo) {
        let stale = ghost.stale_fwd(self.expected_header());
        // First push of the round takes the snapshot; within a round the
        // stale population only shrinks, so keeping the max is exact.
        self.stale_snapshot = Some(self.stale_snapshot.map_or(stale, |s| s.max(stale)));
    }

    fn poll_send(&mut self) -> Option<Packet> {
        self.outbox.pop_front()
    }

    fn poll_deliver(&mut self) -> Option<Message> {
        self.deliveries.pop_front()
    }

    fn space_bytes(&self) -> usize {
        varint_bytes(self.next)
            + varint_bytes(self.counted)
            + varint_bytes(self.stale_snapshot.unwrap_or(0))
            + self.outbox.len() * std::mem::size_of::<Packet>()
    }

    fn state_fingerprint(&self) -> u64 {
        StateHash::new("afek-rx")
            .field(self.next)
            .field(self.counted)
            .field(self.stale_snapshot)
            .finish()
    }

    fn clone_box(&self) -> BoxedReceiver {
        Box::new(self.clone())
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn assign_from(&mut self, source: &dyn Receiver) -> bool {
        match source.as_any().downcast_ref::<Self>() {
            Some(src) => {
                self.clone_from(src);
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ghost_with(h: Header, stale: u64) -> GhostInfo {
        let mut g = GhostInfo::default();
        g.push_stale(h, stale);
        g
    }

    #[test]
    fn no_delivery_before_first_ghost_push() {
        let mut rx = AfekFlushRx::new(3);
        rx.on_receive_pkt(Packet::header_only(Header::new(0)));
        assert!(rx.poll_deliver().is_none());
        rx.on_ghost(&GhostInfo::default());
        rx.on_receive_pkt(Packet::header_only(Header::new(0)));
        assert!(rx.poll_deliver().is_some());
    }

    #[test]
    fn needs_stale_plus_one_copies() {
        let mut rx = AfekFlushRx::new(3);
        rx.on_ghost(&ghost_with(Header::new(0), 3));
        for _ in 0..3 {
            rx.on_receive_pkt(Packet::header_only(Header::new(0)));
            assert!(rx.poll_deliver().is_none(), "fired at or below stale");
        }
        rx.on_receive_pkt(Packet::header_only(Header::new(0)));
        let m = rx.poll_deliver().expect("stale+1 copies deliver");
        assert_eq!(m.id().raw(), 0);
        // Ack carries the message index.
        assert_eq!(rx.poll_send().unwrap().header().index(), 0);
    }

    #[test]
    fn snapshot_resets_per_round() {
        let mut rx = AfekFlushRx::new(3);
        rx.on_ghost(&ghost_with(Header::new(0), 0));
        rx.on_receive_pkt(Packet::header_only(Header::new(0)));
        rx.poll_deliver().unwrap();
        assert_eq!(rx.stale_snapshot(), None);
        // New round: expected label is 1; copies of 1 before the ghost push
        // are not counted.
        rx.on_receive_pkt(Packet::header_only(Header::new(1)));
        rx.on_ghost(&ghost_with(Header::new(1), 0));
        assert!(rx.poll_deliver().is_none());
        rx.on_receive_pkt(Packet::header_only(Header::new(1)));
        assert!(rx.poll_deliver().is_some());
    }

    #[test]
    fn end_to_end_with_manual_ghosts() {
        let (mut tx, mut rx) = AfekFlush::new().make();
        for i in 0..6u64 {
            tx.on_send_msg(Message::identical(i));
            rx.on_ghost(&GhostInfo::default()); // no stale copies
            let mut steps = 0;
            while !tx.ready() {
                while let Some(d) = tx.poll_send() {
                    rx.on_receive_pkt(d);
                }
                while let Some(a) = rx.poll_send() {
                    tx.on_receive_pkt(a);
                }
                tx.on_tick();
                steps += 1;
                assert!(steps < 10, "clean channel should deliver fast");
            }
            assert_eq!(rx.poll_deliver().unwrap().id().raw(), i);
        }
    }

    #[test]
    fn cost_is_linear_in_stale_count() {
        for stale in [0u64, 5, 20, 100] {
            let (mut tx, mut rx) = AfekFlush::new().make();
            tx.on_send_msg(Message::identical(0));
            rx.on_ghost(&ghost_with(Header::new(0), stale));
            let mut copies = 0u64;
            while !tx.ready() {
                while let Some(d) = tx.poll_send() {
                    copies += 1;
                    rx.on_receive_pkt(d);
                }
                while let Some(a) = rx.poll_send() {
                    tx.on_receive_pkt(a);
                }
                tx.on_tick();
            }
            assert_eq!(copies, stale + 1, "cost should be exactly stale+1");
        }
    }

    #[test]
    fn wrong_label_does_not_count() {
        let mut rx = AfekFlushRx::new(3);
        rx.on_ghost(&ghost_with(Header::new(0), 0));
        rx.on_receive_pkt(Packet::header_only(Header::new(2)));
        assert!(rx.poll_deliver().is_none());
    }
}
