//! A sliding-window protocol with modular sequence numbers — how practical
//! data-link layers live with the paper's lower bounds.
//!
//! Headers are sequence numbers modulo `M = 2·w` (so `M` forward headers for
//! a window of `w`), and the automata keep *unbounded* full-precision
//! counters internally — exactly the trade Theorem 3.1 predicts: bounded
//! headers force unbounded space. The protocol is correct when the channel's
//! reordering is bounded (overtaking distance at most `M − w`); under
//! arbitrary non-FIFO behaviour the modular reconstruction aliases and the
//! falsifier produces phantom deliveries. Experiment E9 maps the crossover.

use crate::api::{
    BoxedReceiver, BoxedTransmitter, DataLink, HeaderBound, Receiver, Recoverable, Transmitter,
};
use crate::sequence::varint_bytes;
use nonfifo_ioa::fingerprint::StateHash;
use nonfifo_ioa::{Header, Message, Packet, Payload};
use std::collections::BTreeMap;
use std::collections::VecDeque;

/// Factory for the sliding-window protocol.
///
/// # Example
///
/// ```
/// use nonfifo_protocols::{DataLink, HeaderBound, SlidingWindow};
///
/// let proto = SlidingWindow::new(4);
/// assert_eq!(proto.forward_headers(), HeaderBound::Fixed(8)); // M = 2w
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlidingWindow {
    window: u32,
}

impl SlidingWindow {
    /// Creates a factory with window size `window` (modulus `2·window`).
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    pub fn new(window: u32) -> Self {
        assert!(window >= 1, "window must be at least 1");
        SlidingWindow { window }
    }

    /// The window size `w`.
    pub fn window(&self) -> u32 {
        self.window
    }

    /// The header modulus `M = 2·w`.
    pub fn modulus(&self) -> u32 {
        self.window * 2
    }
}

impl DataLink for SlidingWindow {
    fn name(&self) -> String {
        format!("sliding-window(w={})", self.window)
    }

    fn forward_headers(&self) -> HeaderBound {
        HeaderBound::Fixed(self.modulus())
    }

    fn make(&self) -> (BoxedTransmitter, BoxedReceiver) {
        (
            Box::new(SlidingWindowTx::new(self.window)),
            Box::new(SlidingWindowRx::new(self.window)),
        )
    }
}

/// Transmitter automaton of the sliding-window protocol.
#[derive(Debug)]
pub struct SlidingWindowTx {
    window: u64,
    modulus: u64,
    /// Oldest unacknowledged full sequence number.
    base: u64,
    /// Next fresh full sequence number.
    next: u64,
    unacked: BTreeMap<u64, Option<Payload>>,
    outbox: VecDeque<Packet>,
}

/// Manual `Clone` so `clone_from` reuses this automaton's buffers — the
/// explorer's system pool refills recycled automata in place via
/// `assign_from`, and the derived `clone_from` would reallocate instead.
impl Clone for SlidingWindowTx {
    fn clone(&self) -> Self {
        SlidingWindowTx {
            window: self.window,
            modulus: self.modulus,
            base: self.base,
            next: self.next,
            unacked: self.unacked.clone(),
            outbox: self.outbox.clone(),
        }
    }

    fn clone_from(&mut self, source: &Self) {
        self.window.clone_from(&source.window);
        self.modulus.clone_from(&source.modulus);
        self.base.clone_from(&source.base);
        self.next.clone_from(&source.next);
        self.unacked.clone_from(&source.unacked);
        self.outbox.clone_from(&source.outbox);
    }
}

impl SlidingWindowTx {
    /// Creates the automaton with window `w`.
    pub fn new(window: u32) -> Self {
        assert!(window >= 1, "window must be at least 1");
        SlidingWindowTx {
            window: u64::from(window),
            modulus: u64::from(window) * 2,
            base: 0,
            next: 0,
            unacked: BTreeMap::new(),
            outbox: VecDeque::new(),
        }
    }

    /// Oldest unacknowledged full sequence number.
    pub fn base(&self) -> u64 {
        self.base
    }

    fn packet_for(&self, seq: u64, payload: Option<Payload>) -> Packet {
        let h = Header::new((seq % self.modulus) as u32);
        match payload {
            Some(p) => Packet::new(h, p),
            None => Packet::header_only(h),
        }
    }
}

impl Recoverable for SlidingWindowTx {
    fn crash_amnesia(&mut self) {
        crate::api::amnesia_reboot(self, SlidingWindowTx::new(self.window as u32));
    }
}

impl Transmitter for SlidingWindowTx {
    fn on_send_msg(&mut self, m: Message) {
        debug_assert!(self.ready(), "send_msg while window full");
        let seq = self.next;
        self.next += 1;
        self.unacked.insert(seq, m.payload());
        let pkt = self.packet_for(seq, m.payload());
        self.outbox.push_back(pkt);
    }

    fn on_receive_pkt(&mut self, p: Packet) {
        // Cumulative acknowledgement: the receiver's next expected sequence
        // number modulo M. Advance base by the implied delta when plausible.
        let a = u64::from(p.header().index());
        let delta = (a + self.modulus - self.base % self.modulus) % self.modulus;
        if delta > 0 && delta <= self.next - self.base {
            self.base += delta;
            self.unacked = self.unacked.split_off(&self.base);
        }
    }

    fn on_tick(&mut self) {
        // One retransmission round per tick for everything outstanding.
        if self.outbox.is_empty() {
            let resend: Vec<Packet> = self
                .unacked
                .iter()
                .map(|(&seq, &payload)| self.packet_for(seq, payload))
                .collect();
            self.outbox.extend(resend);
        }
    }

    fn poll_send(&mut self) -> Option<Packet> {
        self.outbox.pop_front()
    }

    fn ready(&self) -> bool {
        self.next - self.base < self.window
    }

    fn space_bytes(&self) -> usize {
        varint_bytes(self.base)
            + varint_bytes(self.next)
            + self.unacked.len() * 9
            + self.outbox.len() * std::mem::size_of::<Packet>()
    }

    fn state_fingerprint(&self) -> u64 {
        StateHash::new("sliding-window-tx")
            .field(self.base)
            .field(self.next)
            .finish()
    }

    fn clone_box(&self) -> BoxedTransmitter {
        Box::new(self.clone())
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn assign_from(&mut self, source: &dyn Transmitter) -> bool {
        match source.as_any().downcast_ref::<Self>() {
            Some(src) => {
                self.clone_from(src);
                true
            }
            None => false,
        }
    }
}

/// Receiver automaton of the sliding-window protocol.
#[derive(Debug)]
pub struct SlidingWindowRx {
    window: u64,
    modulus: u64,
    /// Next full sequence number to deliver.
    next_expected: u64,
    buffered: BTreeMap<u64, Option<Payload>>,
    outbox: VecDeque<Packet>,
    deliveries: VecDeque<Message>,
}

/// Manual `Clone` so `clone_from` reuses this automaton's buffers — the
/// explorer's system pool refills recycled automata in place via
/// `assign_from`, and the derived `clone_from` would reallocate instead.
impl Clone for SlidingWindowRx {
    fn clone(&self) -> Self {
        SlidingWindowRx {
            window: self.window,
            modulus: self.modulus,
            next_expected: self.next_expected,
            buffered: self.buffered.clone(),
            outbox: self.outbox.clone(),
            deliveries: self.deliveries.clone(),
        }
    }

    fn clone_from(&mut self, source: &Self) {
        self.window.clone_from(&source.window);
        self.modulus.clone_from(&source.modulus);
        self.next_expected.clone_from(&source.next_expected);
        self.buffered.clone_from(&source.buffered);
        self.outbox.clone_from(&source.outbox);
        self.deliveries.clone_from(&source.deliveries);
    }
}

impl SlidingWindowRx {
    /// Creates the automaton with window `w`.
    pub fn new(window: u32) -> Self {
        assert!(window >= 1, "window must be at least 1");
        SlidingWindowRx {
            window: u64::from(window),
            modulus: u64::from(window) * 2,
            next_expected: 0,
            buffered: BTreeMap::new(),
            outbox: VecDeque::new(),
            deliveries: VecDeque::new(),
        }
    }

    /// Next full sequence number the receiver will deliver.
    pub fn next_expected(&self) -> u64 {
        self.next_expected
    }
}

impl Recoverable for SlidingWindowRx {
    fn crash_amnesia(&mut self) {
        crate::api::amnesia_reboot(self, SlidingWindowRx::new(self.window as u32));
    }
}

impl Receiver for SlidingWindowRx {
    fn on_receive_pkt(&mut self, p: Packet) {
        let s = u64::from(p.header().index());
        let delta = (s + self.modulus - self.next_expected % self.modulus) % self.modulus;
        if delta < self.window {
            // Reconstruct the full sequence number assuming bounded reorder.
            let full = self.next_expected + delta;
            self.buffered.insert(full, p.payload());
            while let Some(payload) = self.buffered.remove(&self.next_expected) {
                let msg = match payload {
                    Some(pl) => Message::with_payload(self.next_expected, pl),
                    None => Message::identical(self.next_expected),
                };
                self.deliveries.push_back(msg);
                self.next_expected += 1;
            }
        }
        // Cumulative ack: our next expected, mod M.
        self.outbox.push_back(Packet::header_only(Header::new(
            (self.next_expected % self.modulus) as u32,
        )));
    }

    fn poll_send(&mut self) -> Option<Packet> {
        self.outbox.pop_front()
    }

    fn poll_deliver(&mut self) -> Option<Message> {
        self.deliveries.pop_front()
    }

    fn space_bytes(&self) -> usize {
        varint_bytes(self.next_expected)
            + self.buffered.len() * 9
            + self.outbox.len() * std::mem::size_of::<Packet>()
    }

    fn state_fingerprint(&self) -> u64 {
        StateHash::new("sliding-window-rx")
            .field(self.next_expected)
            .field(self.buffered.keys().copied().collect::<Vec<_>>())
            .finish()
    }

    fn clone_box(&self) -> BoxedReceiver {
        Box::new(self.clone())
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn assign_from(&mut self, source: &dyn Receiver) -> bool {
        match source.as_any().downcast_ref::<Self>() {
            Some(src) => {
                self.clone_from(src);
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_over_perfect_channel() {
        let mut tx = SlidingWindowTx::new(4);
        let mut rx = SlidingWindowRx::new(4);
        let mut delivered = 0u64;
        let mut sent = 0u64;
        while delivered < 20 {
            while tx.ready() && sent < 20 {
                tx.on_send_msg(Message::identical(sent));
                sent += 1;
            }
            while let Some(d) = tx.poll_send() {
                rx.on_receive_pkt(d);
            }
            while let Some(m) = rx.poll_deliver() {
                assert_eq!(m.id().raw(), delivered);
                delivered += 1;
            }
            while let Some(a) = rx.poll_send() {
                tx.on_receive_pkt(a);
            }
            tx.on_tick();
        }
        assert_eq!(tx.base(), 20);
    }

    #[test]
    fn out_of_order_within_window_is_buffered() {
        let (mut tx, mut rx) = SlidingWindow::new(3).make();
        tx.on_send_msg(Message::identical(0));
        tx.on_send_msg(Message::identical(1));
        tx.on_send_msg(Message::identical(2));
        let d0 = tx.poll_send().unwrap();
        let d1 = tx.poll_send().unwrap();
        let d2 = tx.poll_send().unwrap();
        rx.on_receive_pkt(d2);
        assert!(rx.poll_deliver().is_none());
        rx.on_receive_pkt(d0);
        rx.on_receive_pkt(d1);
        let ids: Vec<u64> =
            std::iter::from_fn(|| rx.poll_deliver().map(|m| m.id().raw())).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn loss_recovered_by_retransmission() {
        let mut tx = SlidingWindowTx::new(2);
        let mut rx = SlidingWindowRx::new(2);
        tx.on_send_msg(Message::identical(0));
        let _lost = tx.poll_send().unwrap();
        tx.on_tick(); // retransmit round
        let d0 = tx.poll_send().unwrap();
        rx.on_receive_pkt(d0);
        assert_eq!(rx.poll_deliver().unwrap().id().raw(), 0);
        tx.on_receive_pkt(rx.poll_send().unwrap());
        assert_eq!(tx.base(), 1);
    }

    #[test]
    fn duplicate_outside_window_is_ignored() {
        let w = 2;
        let mut tx = SlidingWindowTx::new(w);
        let mut rx = SlidingWindowRx::new(w);
        // Deliver 0 and 1, keeping stale copies.
        let mut stale = Vec::new();
        for i in 0..2u64 {
            tx.on_send_msg(Message::identical(i));
            let fresh = tx.poll_send().unwrap();
            tx.on_tick();
            stale.push(tx.poll_send().unwrap());
            rx.on_receive_pkt(fresh);
            rx.poll_deliver().unwrap();
            while let Some(a) = rx.poll_send() {
                tx.on_receive_pkt(a);
            }
        }
        // Stale copy of 0: header 0, expected = 2 (mod 4 = 2), delta = 2 ≥ w
        // → ignored.
        rx.on_receive_pkt(stale[0]);
        assert!(rx.poll_deliver().is_none());
        assert_eq!(rx.next_expected(), 2);
    }

    #[test]
    fn deep_replay_aliases_and_breaks_dl1() {
        // After a full modulus cycle, a stale copy aliases into the window:
        // the failure mode the falsifier exploits (and the E9 crossover).
        let w = 2;
        let modulus = 4u64;
        let (mut tx, mut rx) = SlidingWindow::new(w).make();
        let mut stale0 = None;
        for i in 0..modulus {
            tx.on_send_msg(Message::identical(i));
            let fresh = tx.poll_send().unwrap();
            if i == 0 {
                tx.on_tick();
                stale0 = tx.poll_send();
            }
            rx.on_receive_pkt(fresh);
            rx.poll_deliver().unwrap();
            while let Some(a) = rx.poll_send() {
                tx.on_receive_pkt(a);
            }
        }
        // Receiver expects 4 (header 0). The stale copy of 0 has header 0:
        // delta = 0 < w → phantom delivery of "message 4".
        rx.on_receive_pkt(stale0.unwrap());
        assert!(rx.poll_deliver().is_some(), "aliasing reproduced");
    }

    #[test]
    fn window_gates_readiness() {
        let mut tx = SlidingWindowTx::new(2);
        assert!(tx.ready());
        tx.on_send_msg(Message::identical(0));
        tx.on_send_msg(Message::identical(1));
        assert!(!tx.ready());
        // Cumulative ack for one message reopens the window.
        tx.on_receive_pkt(Packet::header_only(Header::new(1)));
        assert!(tx.ready());
        assert_eq!(tx.base(), 1);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn rejects_zero_window() {
        let _ = SlidingWindow::new(0);
    }
}
