//! The alternating-bit protocol [BSW69] — the paper's §2.3 example of a
//! protocol distinguishing packets with minimal headers.
//!
//! Two forward headers (the bit), two backward headers. Correct over lossy
//! FIFO channels; over a non-FIFO channel a replayed stale copy of the
//! current bit makes the receiver deliver a message that was never sent —
//! experiment E8 and the falsifier tests construct exactly that execution.

use crate::api::{
    BoxedReceiver, BoxedTransmitter, DataLink, HeaderBound, Receiver, Recoverable, Transmitter,
};
use nonfifo_ioa::fingerprint::StateHash;
use nonfifo_ioa::{Header, Message, Packet};
use std::collections::VecDeque;

/// Factory for the alternating-bit protocol.
///
/// # Example
///
/// ```
/// use nonfifo_protocols::{AlternatingBit, DataLink, HeaderBound};
///
/// let proto = AlternatingBit::new();
/// assert_eq!(proto.forward_headers(), HeaderBound::Fixed(2));
/// let (_tx, _rx) = proto.make();
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AlternatingBit;

impl AlternatingBit {
    /// Creates the factory.
    pub fn new() -> Self {
        AlternatingBit
    }

    /// Alias for [`AlternatingBit::new`], symmetric with other protocols.
    pub fn factory() -> Self {
        AlternatingBit
    }
}

impl DataLink for AlternatingBit {
    fn name(&self) -> String {
        "alternating-bit".into()
    }

    fn forward_headers(&self) -> HeaderBound {
        HeaderBound::Fixed(2)
    }

    fn make(&self) -> (BoxedTransmitter, BoxedReceiver) {
        (
            Box::new(AlternatingBitTx::new()),
            Box::new(AlternatingBitRx::new()),
        )
    }
}

/// Transmitter automaton of the alternating-bit protocol.
#[derive(Debug)]
pub struct AlternatingBitTx {
    bit: u8,
    pending: Option<Message>,
    outbox: VecDeque<Packet>,
}

/// Manual `Clone` so `clone_from` reuses this automaton's buffers — the
/// explorer's system pool refills recycled automata in place via
/// `assign_from`, and the derived `clone_from` would reallocate instead.
impl Clone for AlternatingBitTx {
    fn clone(&self) -> Self {
        AlternatingBitTx {
            bit: self.bit,
            pending: self.pending,
            outbox: self.outbox.clone(),
        }
    }

    fn clone_from(&mut self, source: &Self) {
        self.bit.clone_from(&source.bit);
        self.pending.clone_from(&source.pending);
        self.outbox.clone_from(&source.outbox);
    }
}

impl AlternatingBitTx {
    /// Creates the automaton in its initial state (bit 0, idle).
    pub fn new() -> Self {
        AlternatingBitTx {
            bit: 0,
            pending: None,
            outbox: VecDeque::new(),
        }
    }

    /// The current bit.
    pub fn bit(&self) -> u8 {
        self.bit
    }

    fn data_packet(&self, m: Message) -> Packet {
        match m.payload() {
            Some(p) => Packet::new(Header::new(u32::from(self.bit)), p),
            None => Packet::header_only(Header::new(u32::from(self.bit))),
        }
    }
}

impl Default for AlternatingBitTx {
    fn default() -> Self {
        AlternatingBitTx::new()
    }
}

impl Recoverable for AlternatingBitTx {
    fn crash_amnesia(&mut self) {
        crate::api::amnesia_reboot(self, AlternatingBitTx::new());
    }
}

impl Transmitter for AlternatingBitTx {
    fn on_send_msg(&mut self, m: Message) {
        debug_assert!(self.pending.is_none(), "send_msg while not ready");
        self.pending = Some(m);
        let pkt = self.data_packet(m);
        self.outbox.push_back(pkt);
    }

    fn on_receive_pkt(&mut self, p: Packet) {
        if self.pending.is_some() && p.header().index() == u32::from(self.bit) {
            self.pending = None;
            self.bit ^= 1;
        }
    }

    fn on_tick(&mut self) {
        // Retransmit once per tick while unacknowledged.
        if let Some(m) = self.pending {
            if self.outbox.is_empty() {
                let pkt = self.data_packet(m);
                self.outbox.push_back(pkt);
            }
        }
    }

    fn poll_send(&mut self) -> Option<Packet> {
        self.outbox.pop_front()
    }

    fn ready(&self) -> bool {
        self.pending.is_none()
    }

    fn space_bytes(&self) -> usize {
        1 + 1 + self.outbox.len() * std::mem::size_of::<Packet>()
    }

    fn state_fingerprint(&self) -> u64 {
        StateHash::new("abp-tx")
            .field(self.bit)
            .field(self.pending.is_some())
            .finish()
    }

    fn clone_box(&self) -> BoxedTransmitter {
        Box::new(self.clone())
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn assign_from(&mut self, source: &dyn Transmitter) -> bool {
        match source.as_any().downcast_ref::<Self>() {
            Some(src) => {
                self.clone_from(src);
                true
            }
            None => false,
        }
    }
}

/// Receiver automaton of the alternating-bit protocol.
#[derive(Debug)]
pub struct AlternatingBitRx {
    expected: u8,
    delivered: u64,
    outbox: VecDeque<Packet>,
    inbox_deliveries: VecDeque<Message>,
}

/// Manual `Clone` so `clone_from` reuses this automaton's buffers — the
/// explorer's system pool refills recycled automata in place via
/// `assign_from`, and the derived `clone_from` would reallocate instead.
impl Clone for AlternatingBitRx {
    fn clone(&self) -> Self {
        AlternatingBitRx {
            expected: self.expected,
            delivered: self.delivered,
            outbox: self.outbox.clone(),
            inbox_deliveries: self.inbox_deliveries.clone(),
        }
    }

    fn clone_from(&mut self, source: &Self) {
        self.expected.clone_from(&source.expected);
        self.delivered.clone_from(&source.delivered);
        self.outbox.clone_from(&source.outbox);
        self.inbox_deliveries.clone_from(&source.inbox_deliveries);
    }
}

impl AlternatingBitRx {
    /// Creates the automaton in its initial state (expecting bit 0).
    pub fn new() -> Self {
        AlternatingBitRx {
            expected: 0,
            delivered: 0,
            outbox: VecDeque::new(),
            inbox_deliveries: VecDeque::new(),
        }
    }

    /// The bit the receiver expects next.
    pub fn expected_bit(&self) -> u8 {
        self.expected
    }
}

impl Default for AlternatingBitRx {
    fn default() -> Self {
        AlternatingBitRx::new()
    }
}

impl Recoverable for AlternatingBitRx {
    fn crash_amnesia(&mut self) {
        crate::api::amnesia_reboot(self, AlternatingBitRx::new());
    }
}

impl Receiver for AlternatingBitRx {
    fn on_receive_pkt(&mut self, p: Packet) {
        // Always acknowledge the bit we saw.
        self.outbox.push_back(Packet::header_only(p.header()));
        if p.header().index() == u32::from(self.expected) {
            let msg = match p.payload() {
                Some(pl) => Message::with_payload(self.delivered, pl),
                None => Message::identical(self.delivered),
            };
            self.inbox_deliveries.push_back(msg);
            self.delivered += 1;
            self.expected ^= 1;
        }
    }

    fn poll_send(&mut self) -> Option<Packet> {
        self.outbox.pop_front()
    }

    fn poll_deliver(&mut self) -> Option<Message> {
        self.inbox_deliveries.pop_front()
    }

    fn space_bytes(&self) -> usize {
        1 + 8 + self.outbox.len() * std::mem::size_of::<Packet>()
    }

    fn state_fingerprint(&self) -> u64 {
        StateHash::new("abp-rx").field(self.expected).finish()
    }

    fn clone_box(&self) -> BoxedReceiver {
        Box::new(self.clone())
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn assign_from(&mut self, source: &dyn Receiver) -> bool {
        match source.as_any().downcast_ref::<Self>() {
            Some(src) => {
                self.clone_from(src);
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn happy_path_over_perfect_channel() {
        let (mut tx, mut rx) = AlternatingBit::new().make();
        for i in 0..5u64 {
            assert!(tx.ready());
            tx.on_send_msg(Message::identical(i));
            let d = tx.poll_send().expect("data packet");
            assert_eq!(d.header().index(), (i % 2) as u32);
            rx.on_receive_pkt(d);
            let delivered = rx.poll_deliver().expect("delivery");
            assert_eq!(delivered.id().raw(), i);
            let ack = rx.poll_send().expect("ack");
            tx.on_receive_pkt(ack);
        }
        assert!(tx.ready());
    }

    #[test]
    fn retransmits_until_acked() {
        let mut tx = AlternatingBitTx::new();
        tx.on_send_msg(Message::identical(0));
        assert!(tx.poll_send().is_some());
        assert!(tx.poll_send().is_none());
        tx.on_tick();
        assert!(tx.poll_send().is_some());
        tx.on_receive_pkt(Packet::header_only(Header::new(0)));
        tx.on_tick();
        assert!(tx.poll_send().is_none());
        assert!(tx.ready());
    }

    #[test]
    fn wrong_bit_ack_is_ignored() {
        let mut tx = AlternatingBitTx::new();
        tx.on_send_msg(Message::identical(0));
        tx.on_receive_pkt(Packet::header_only(Header::new(1)));
        assert!(!tx.ready());
    }

    #[test]
    fn receiver_acks_duplicates_without_redelivering() {
        let mut rx = AlternatingBitRx::new();
        let d0 = Packet::header_only(Header::new(0));
        rx.on_receive_pkt(d0);
        assert!(rx.poll_deliver().is_some());
        assert!(rx.poll_send().is_some());
        // Duplicate of the old bit: ack again, no delivery.
        rx.on_receive_pkt(d0);
        assert!(rx.poll_deliver().is_none());
        assert!(rx.poll_send().is_some());
    }

    #[test]
    fn stale_copy_causes_phantom_delivery_on_non_fifo() {
        // The E8 scenario in miniature: a delayed copy of bit 0 arrives
        // after the receiver has cycled back to expecting bit 0.
        let (mut tx, mut rx) = AlternatingBit::new().make();
        // Message 0 (bit 0): the channel holds one copy back.
        tx.on_send_msg(Message::identical(0));
        let d0_first = tx.poll_send().unwrap();
        tx.on_tick();
        let d0_stale = tx.poll_send().unwrap(); // the copy the channel delays
        rx.on_receive_pkt(d0_first);
        rx.poll_deliver().unwrap();
        tx.on_receive_pkt(rx.poll_send().unwrap());
        // Message 1 (bit 1) delivered normally.
        tx.on_send_msg(Message::identical(1));
        rx.on_receive_pkt(tx.poll_send().unwrap());
        rx.poll_deliver().unwrap();
        tx.on_receive_pkt(rx.poll_send().unwrap());
        // Receiver now expects bit 0 again; the stale copy is replayed.
        rx.on_receive_pkt(d0_stale);
        // Phantom third delivery with only two messages sent: DL1 violated.
        assert!(rx.poll_deliver().is_some());
    }

    #[test]
    fn fingerprints_reflect_control_state() {
        let mut tx = AlternatingBitTx::new();
        let f0 = tx.state_fingerprint();
        tx.on_send_msg(Message::identical(0));
        assert_ne!(tx.state_fingerprint(), f0);
    }

    #[test]
    fn payload_is_carried() {
        let (mut tx, mut rx) = AlternatingBit::new().make();
        tx.on_send_msg(Message::with_payload(0, nonfifo_ioa::Payload::new(77)));
        rx.on_receive_pkt(tx.poll_send().unwrap());
        let m = rx.poll_deliver().unwrap();
        assert_eq!(m.payload().map(|p| p.word()), Some(77));
    }
}
