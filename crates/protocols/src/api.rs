//! The protocol automaton API: [`Transmitter`], [`Receiver`], and the
//! [`DataLink`] factory.

use nonfifo_ioa::{Header, Message, Packet};
use std::any::Any;
use std::fmt;

/// Harness-computed channel summaries pushed to the automata every
/// scheduler step.
///
/// Real protocols cannot observe channel state; the two unpublished
/// protocols the paper cites (\[AFWZ88\], \[Afe88\]) realise equivalent
/// knowledge through mechanisms whose specifications are unavailable, so our
/// reconstructions receive it as an explicit oracle instead (see `DESIGN.md`
/// §2). Honest protocols simply ignore [`Transmitter::on_ghost`] /
/// [`Receiver::on_ghost`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GhostInfo {
    /// Copies currently delayed on the forward channel.
    pub fwd_in_transit: u64,
    /// Copies currently delayed on the backward channel.
    pub bwd_in_transit: u64,
    /// Per forward header: copies delayed on the forward channel that were
    /// sent *before* the most recent `send_msg` — the stale population that
    /// could be replayed against the current message. Sorted by header and
    /// deduplicated; use [`push_stale`](GhostInfo::push_stale) to maintain
    /// the invariant. A flat vec rather than a map so harnesses can rebuild
    /// the summary every scheduler step without touching the heap.
    pub stale_fwd_by_header: Vec<(Header, u64)>,
}

impl GhostInfo {
    /// Stale forward copies of header `h` (0 if none).
    pub fn stale_fwd(&self, h: Header) -> u64 {
        self.stale_fwd_by_header
            .binary_search_by_key(&h, |&(header, _)| header)
            .map(|i| self.stale_fwd_by_header[i].1)
            .unwrap_or(0)
    }

    /// Total stale forward copies across all headers.
    pub fn stale_fwd_total(&self) -> u64 {
        self.stale_fwd_by_header.iter().map(|&(_, n)| n).sum()
    }

    /// Records `n` stale copies of header `h`, keeping the entries sorted
    /// and unique (inserting an existing header overwrites its count).
    pub fn push_stale(&mut self, h: Header, n: u64) {
        match self
            .stale_fwd_by_header
            .binary_search_by_key(&h, |&(header, _)| header)
        {
            Ok(i) => self.stale_fwd_by_header[i].1 = n,
            Err(i) => self.stale_fwd_by_header.insert(i, (h, n)),
        }
    }

    /// Clears the summary for in-place refill, keeping the allocation.
    pub fn reset(&mut self) {
        self.fwd_in_transit = 0;
        self.bwd_in_transit = 0;
        self.stale_fwd_by_header.clear();
    }
}

/// Crash-recovery semantics for a station automaton.
///
/// The chaos experiments crash and restart stations mid-execution; this
/// trait fixes what "restart" means:
///
/// - **Amnesia** ([`crash_amnesia`](Recoverable::crash_amnesia)): all
///   volatile state — counters, windows, outboxes, undelivered buffers —
///   resets to the automaton's initial state. Configuration fixed at
///   construction (window size `w`, label cycle `k`) survives as ROM: a
///   rebooted station still knows what protocol it runs.
/// - **Restore**: the harness snapshots via `clone_box` at a checkpoint
///   (the simulation checkpoints at `send_msg` boundaries) and swaps the
///   snapshot back in, modelling a station with stable storage.
///
/// A crash never touches the channels: copies already in transit stay in
/// transit, which is exactly what makes recovery interesting over a
/// non-FIFO physical layer — the rebooted automaton faces its own stale
/// copies with fresh (reset) state.
pub trait Recoverable {
    /// Crashes the automaton with total loss of volatile state.
    ///
    /// After the call the automaton is observably identical to a freshly
    /// constructed one with the same configuration: `state_fingerprint`
    /// returns the initial fingerprint and no queued output survives.
    fn crash_amnesia(&mut self);
}

/// Shared implementation of [`Recoverable::crash_amnesia`]: rebuilds the
/// automaton from its construction-time configuration ("ROM") while reusing
/// the existing heap buffers.
///
/// Callers pass a freshly constructed `initial` carrying the same
/// configuration (`Self::new(self.window)` and the like); the reset goes
/// through the automaton's fieldwise `clone_from`, so queue and map
/// allocations survive the reboot — the same reason the automata implement
/// manual `Clone` for the explorer's pool. This replaces the per-protocol
/// fieldwise reset lists that used to be duplicated (and had to be kept in
/// sync with the field set by hand) across the window-family protocols.
pub fn amnesia_reboot<A: Clone>(automaton: &mut A, initial: A) {
    automaton.clone_from(&initial);
}

/// The transmitting-station automaton `Aᵗ`.
///
/// Input actions are the `on_*` methods (`send_msg`,
/// `receive_pkt`ʳ→ᵗ, a clock tick, and the ghost push); the output action
/// `send_pkt`ᵗ→ʳ is modelled by the harness draining
/// [`poll_send`](Transmitter::poll_send).
///
/// Implementations must be deterministic: the adversaries compute boundness
/// extensions by cloning the automaton and simulating forward, which is only
/// sound if a clone behaves identically on identical inputs.
///
/// Automata are `Send + Sync`: the parallel state-space explorer shares
/// frontier nodes across worker threads by reference and clones them on
/// expansion, so a protocol state may not contain thread-bound interior
/// mutability. Every automaton here is a plain deterministic data structure,
/// which satisfies the bounds for free.
pub trait Transmitter: Recoverable + fmt::Debug + Send + Sync {
    /// `send_msg(m)`: the higher layer hands over the next message.
    ///
    /// The harness only calls this when [`ready`](Transmitter::ready)
    /// returns true.
    fn on_send_msg(&mut self, m: Message);

    /// `receive_pkt`ʳ→ᵗ`(p)`: an acknowledgement packet arrives.
    fn on_receive_pkt(&mut self, p: Packet);

    /// One scheduler step has elapsed (drives retransmission timers).
    fn on_tick(&mut self) {}

    /// Harness pushes ghost channel summaries; honest protocols ignore it.
    fn on_ghost(&mut self, _ghost: &GhostInfo) {}

    /// True when, from the automaton's **current** state, an arriving
    /// acknowledgement with header `h` can never again change its control
    /// state, its outputs, or its readiness — for *every* possible future
    /// input sequence. The claim must be **monotone**: once a header is
    /// retired it stays retired forever (protocols with strictly growing
    /// counters retire every header below the counter; protocols that
    /// cycle through a fixed header alphabet must leave the conservative
    /// default, `false`).
    ///
    /// This is the protocol-supplied half of the explorer's partial-order
    /// reduction (see `nonfifo-adversary`'s `por` module): delayed copies
    /// whose header both stations have retired are interchangeable
    /// garbage, and the reduced engine deduplicates states modulo their
    /// identity. An over-claiming implementation makes `--por` unsound —
    /// the differential oracle and the property harness exist to catch
    /// exactly that.
    fn header_retired(&self, _h: Header) -> bool {
        false
    }

    /// Drains the next enabled `send_pkt`ᵗ→ʳ output, if any.
    fn poll_send(&mut self) -> Option<Packet>;

    /// True when the automaton can accept the next `send_msg` (simple
    /// stop-and-wait flow control; the paper's executions interleave one
    /// message at a time).
    fn ready(&self) -> bool;

    /// Bytes of live protocol state — the space observable of Theorem 3.1.
    fn space_bytes(&self) -> usize;

    /// Deterministic fingerprint of the *control* state (used for product
    /// state counting in the Theorem 2.1 experiments).
    fn state_fingerprint(&self) -> u64;

    /// Clones the automaton behind a box.
    fn clone_box(&self) -> BoxedTransmitter;

    /// The automaton as [`Any`], enabling same-type downcasts for
    /// [`assign_from`](Transmitter::assign_from).
    fn as_any(&self) -> &dyn Any;

    /// Copies `source`'s state into `self` without allocating a new box,
    /// reusing this automaton's storage. Returns false when `source` is a
    /// different concrete type — callers fall back to
    /// [`clone_box`](Transmitter::clone_box). The state-space explorer
    /// recycles frontier systems through a pool with this, so its
    /// steady-state expansion loop never touches the allocator.
    fn assign_from(&mut self, source: &dyn Transmitter) -> bool;
}

/// The receiving-station automaton `Aʳ`.
///
/// Input actions: `receive_pkt`ᵗ→ʳ, tick, ghost. Output actions:
/// `send_pkt`ʳ→ᵗ via [`poll_send`](Receiver::poll_send) and
/// `receive_msg(m)` via [`poll_deliver`](Receiver::poll_deliver).
pub trait Receiver: Recoverable + fmt::Debug + Send + Sync {
    /// `receive_pkt`ᵗ→ʳ`(p)`: a data packet arrives.
    fn on_receive_pkt(&mut self, p: Packet);

    /// One scheduler step has elapsed.
    fn on_tick(&mut self) {}

    /// Harness pushes ghost channel summaries; honest protocols ignore it.
    fn on_ghost(&mut self, _ghost: &GhostInfo) {}

    /// True when, from the automaton's **current** state, an arriving data
    /// packet with header `h` can never again change its control state or
    /// deliver a message — for *every* possible future input sequence.
    /// (Re-emitting an acknowledgement for such a packet is allowed; the
    /// reduction additionally requires the transmitter to have retired the
    /// echoed header.) Same monotonicity contract and same soundness
    /// stakes as [`Transmitter::header_retired`]; the conservative default
    /// is `false`.
    fn header_retired(&self, _h: Header) -> bool {
        false
    }

    /// Drains the next enabled `send_pkt`ʳ→ᵗ output (acknowledgement).
    fn poll_send(&mut self) -> Option<Packet>;

    /// Drains the next enabled `receive_msg` output.
    fn poll_deliver(&mut self) -> Option<Message>;

    /// Bytes of live protocol state.
    fn space_bytes(&self) -> usize;

    /// Deterministic fingerprint of the control state.
    fn state_fingerprint(&self) -> u64;

    /// Clones the automaton behind a box.
    fn clone_box(&self) -> BoxedReceiver;

    /// The automaton as [`Any`], enabling same-type downcasts for
    /// [`assign_from`](Receiver::assign_from).
    fn as_any(&self) -> &dyn Any;

    /// Copies `source`'s state into `self` without allocating a new box;
    /// false when `source` is a different concrete type (fall back to
    /// [`clone_box`](Receiver::clone_box)).
    fn assign_from(&mut self, source: &dyn Receiver) -> bool;
}

/// A boxed transmitter trait object.
pub type BoxedTransmitter = Box<dyn Transmitter>;

/// A boxed receiver trait object.
pub type BoxedReceiver = Box<dyn Receiver>;

impl Clone for BoxedTransmitter {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

impl Clone for BoxedReceiver {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// How a protocol's forward-header usage grows with the number of messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeaderBound {
    /// At most `k` distinct forward packets, ever (the paper's
    /// "protocol with a fixed number k of headers").
    Fixed(
        /// The header count `k`.
        u32,
    ),
    /// Header usage grows with the number of messages (the paper's naive
    /// protocol: `h(n) = n`).
    PerMessage,
}

impl fmt::Display for HeaderBound {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HeaderBound::Fixed(k) => write!(f, "{k} headers"),
            HeaderBound::PerMessage => write!(f, "n headers"),
        }
    }
}

/// A data-link protocol: a named factory for fresh `(Aᵗ, Aʳ)` pairs.
///
/// Experiment tables iterate over `Vec<Box<dyn DataLink>>`, instantiating a
/// fresh automaton pair per run. Factories are `Send + Sync` so parallel
/// harnesses (the differential explorer, the property matrix) can share one
/// factory across threads.
pub trait DataLink: fmt::Debug + Send + Sync {
    /// Human-readable protocol name (appears in experiment tables).
    fn name(&self) -> String;

    /// The forward-header budget this protocol promises.
    fn forward_headers(&self) -> HeaderBound;

    /// Builds a fresh automaton pair in their initial states.
    fn make(&self) -> (BoxedTransmitter, BoxedReceiver);

    /// True if the automata consume [`GhostInfo`] (oracle-assisted
    /// reconstructions). Harnesses may skip the — potentially expensive —
    /// ghost computation when this is false.
    fn uses_ghosts(&self) -> bool {
        false
    }
}

/// A boxed factory is a factory: lets `Box<dyn DataLink>` flow into any
/// `impl DataLink` position (the simulation builder, experiment tables)
/// without a bespoke newtype adapter at each call site.
impl DataLink for Box<dyn DataLink> {
    fn name(&self) -> String {
        (**self).name()
    }
    fn forward_headers(&self) -> HeaderBound {
        (**self).forward_headers()
    }
    fn make(&self) -> (BoxedTransmitter, BoxedReceiver) {
        (**self).make()
    }
    fn uses_ghosts(&self) -> bool {
        (**self).uses_ghosts()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ghost_accessors() {
        let mut g = GhostInfo::default();
        g.push_stale(Header::new(0), 3);
        g.push_stale(Header::new(2), 4);
        assert_eq!(g.stale_fwd(Header::new(0)), 3);
        assert_eq!(g.stale_fwd(Header::new(1)), 0);
        assert_eq!(g.stale_fwd_total(), 7);
    }

    #[test]
    fn header_bound_display() {
        assert_eq!(HeaderBound::Fixed(3).to_string(), "3 headers");
        assert_eq!(HeaderBound::PerMessage.to_string(), "n headers");
    }
}
