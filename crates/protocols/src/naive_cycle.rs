//! A `k`-header label-cycle protocol that trusts the channel order — the
//! canonical victim of the Theorem 3.1/4.1 falsifiers.
//!
//! Message `i` travels as `D(i mod k)`; the receiver delivers on the *first*
//! sighting of the expected label. Over FIFO channels this is correct (it
//! generalises the alternating bit, which is the `k = 2` instance); over a
//! non-FIFO channel a single replayed stale copy of the expected label
//! produces a phantom delivery. The falsifiers find that execution
//! mechanically for every `k`.

use crate::api::{
    BoxedReceiver, BoxedTransmitter, DataLink, HeaderBound, Receiver, Recoverable, Transmitter,
};
use nonfifo_ioa::fingerprint::StateHash;
use nonfifo_ioa::{Header, Message, Packet};
use std::collections::VecDeque;

/// Factory for the `k`-label cycle protocol.
///
/// # Example
///
/// ```
/// use nonfifo_protocols::{DataLink, HeaderBound, NaiveCycle};
///
/// let proto = NaiveCycle::new(3);
/// assert_eq!(proto.forward_headers(), HeaderBound::Fixed(3));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NaiveCycle {
    k: u32,
}

impl NaiveCycle {
    /// Creates a factory for a cycle of `k` labels.
    ///
    /// # Panics
    ///
    /// Panics if `k < 2` (a single label cannot even distinguish
    /// consecutive messages over a perfect channel).
    pub fn new(k: u32) -> Self {
        assert!(k >= 2, "label cycle needs k ≥ 2, got {k}");
        NaiveCycle { k }
    }

    /// The number of labels.
    pub fn k(&self) -> u32 {
        self.k
    }
}

impl DataLink for NaiveCycle {
    fn name(&self) -> String {
        format!("naive-cycle(k={})", self.k)
    }

    fn forward_headers(&self) -> HeaderBound {
        HeaderBound::Fixed(self.k)
    }

    fn make(&self) -> (BoxedTransmitter, BoxedReceiver) {
        (
            Box::new(NaiveCycleTx::new(self.k)),
            Box::new(NaiveCycleRx::new(self.k)),
        )
    }
}

/// Transmitter automaton of the label-cycle protocol.
#[derive(Debug)]
pub struct NaiveCycleTx {
    k: u32,
    seq: u64,
    pending: Option<Message>,
    outbox: VecDeque<Packet>,
}

/// Manual `Clone` so `clone_from` reuses this automaton's buffers — the
/// explorer's system pool refills recycled automata in place via
/// `assign_from`, and the derived `clone_from` would reallocate instead.
impl Clone for NaiveCycleTx {
    fn clone(&self) -> Self {
        NaiveCycleTx {
            k: self.k,
            seq: self.seq,
            pending: self.pending,
            outbox: self.outbox.clone(),
        }
    }

    fn clone_from(&mut self, source: &Self) {
        self.k.clone_from(&source.k);
        self.seq.clone_from(&source.seq);
        self.pending.clone_from(&source.pending);
        self.outbox.clone_from(&source.outbox);
    }
}

impl NaiveCycleTx {
    /// Creates the automaton with label cycle `k`.
    pub fn new(k: u32) -> Self {
        NaiveCycleTx {
            k,
            seq: 0,
            pending: None,
            outbox: VecDeque::new(),
        }
    }

    fn label(&self) -> Header {
        Header::new((self.seq % u64::from(self.k)) as u32)
    }

    fn data_packet(&self, m: Message) -> Packet {
        match m.payload() {
            Some(p) => Packet::new(self.label(), p),
            None => Packet::header_only(self.label()),
        }
    }
}

impl Recoverable for NaiveCycleTx {
    fn crash_amnesia(&mut self) {
        *self = NaiveCycleTx::new(self.k);
    }
}

impl Transmitter for NaiveCycleTx {
    fn on_send_msg(&mut self, m: Message) {
        debug_assert!(self.pending.is_none(), "send_msg while not ready");
        self.pending = Some(m);
        let pkt = self.data_packet(m);
        self.outbox.push_back(pkt);
    }

    fn on_receive_pkt(&mut self, p: Packet) {
        if self.pending.is_some() && p.header() == self.label() {
            self.pending = None;
            self.seq += 1;
        }
    }

    fn on_tick(&mut self) {
        if let Some(m) = self.pending {
            if self.outbox.is_empty() {
                let pkt = self.data_packet(m);
                self.outbox.push_back(pkt);
            }
        }
    }

    fn poll_send(&mut self) -> Option<Packet> {
        self.outbox.pop_front()
    }

    fn ready(&self) -> bool {
        self.pending.is_none()
    }

    fn space_bytes(&self) -> usize {
        4 + 8 + self.outbox.len() * std::mem::size_of::<Packet>()
    }

    fn state_fingerprint(&self) -> u64 {
        StateHash::new("naive-cycle-tx")
            .field(self.seq % u64::from(self.k))
            .field(self.pending.is_some())
            .finish()
    }

    fn clone_box(&self) -> BoxedTransmitter {
        Box::new(self.clone())
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn assign_from(&mut self, source: &dyn Transmitter) -> bool {
        match source.as_any().downcast_ref::<Self>() {
            Some(src) => {
                self.clone_from(src);
                true
            }
            None => false,
        }
    }
}

/// Receiver automaton of the label-cycle protocol.
#[derive(Debug)]
pub struct NaiveCycleRx {
    k: u32,
    delivered: u64,
    outbox: VecDeque<Packet>,
    deliveries: VecDeque<Message>,
}

/// Manual `Clone` so `clone_from` reuses this automaton's buffers — the
/// explorer's system pool refills recycled automata in place via
/// `assign_from`, and the derived `clone_from` would reallocate instead.
impl Clone for NaiveCycleRx {
    fn clone(&self) -> Self {
        NaiveCycleRx {
            k: self.k,
            delivered: self.delivered,
            outbox: self.outbox.clone(),
            deliveries: self.deliveries.clone(),
        }
    }

    fn clone_from(&mut self, source: &Self) {
        self.k.clone_from(&source.k);
        self.delivered.clone_from(&source.delivered);
        self.outbox.clone_from(&source.outbox);
        self.deliveries.clone_from(&source.deliveries);
    }
}

impl NaiveCycleRx {
    /// Creates the automaton with label cycle `k`.
    pub fn new(k: u32) -> Self {
        NaiveCycleRx {
            k,
            delivered: 0,
            outbox: VecDeque::new(),
            deliveries: VecDeque::new(),
        }
    }

    fn expected(&self) -> Header {
        Header::new((self.delivered % u64::from(self.k)) as u32)
    }
}

impl Recoverable for NaiveCycleRx {
    fn crash_amnesia(&mut self) {
        *self = NaiveCycleRx::new(self.k);
    }
}

impl Receiver for NaiveCycleRx {
    fn on_receive_pkt(&mut self, p: Packet) {
        self.outbox.push_back(Packet::header_only(p.header()));
        if p.header() == self.expected() {
            let msg = match p.payload() {
                Some(pl) => Message::with_payload(self.delivered, pl),
                None => Message::identical(self.delivered),
            };
            self.deliveries.push_back(msg);
            self.delivered += 1;
        }
    }

    fn poll_send(&mut self) -> Option<Packet> {
        self.outbox.pop_front()
    }

    fn poll_deliver(&mut self) -> Option<Message> {
        self.deliveries.pop_front()
    }

    fn space_bytes(&self) -> usize {
        4 + 8 + self.outbox.len() * std::mem::size_of::<Packet>()
    }

    fn state_fingerprint(&self) -> u64 {
        StateHash::new("naive-cycle-rx")
            .field(self.delivered % u64::from(self.k))
            .finish()
    }

    fn clone_box(&self) -> BoxedReceiver {
        Box::new(self.clone())
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn assign_from(&mut self, source: &dyn Receiver) -> bool {
        match source.as_any().downcast_ref::<Self>() {
            Some(src) => {
                self.clone_from(src);
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_in_order_over_perfect_channel() {
        let (mut tx, mut rx) = NaiveCycle::new(3).make();
        for i in 0..7u64 {
            tx.on_send_msg(Message::identical(i));
            let d = tx.poll_send().unwrap();
            assert_eq!(u64::from(d.header().index()), i % 3);
            rx.on_receive_pkt(d);
            assert_eq!(rx.poll_deliver().unwrap().id().raw(), i);
            tx.on_receive_pkt(rx.poll_send().unwrap());
            assert!(tx.ready());
        }
    }

    #[test]
    fn replayed_stale_label_is_a_phantom_delivery() {
        let k = 3;
        let (mut tx, mut rx) = NaiveCycle::new(k).make();
        // Round 0: keep one extra copy of label 0.
        tx.on_send_msg(Message::identical(0));
        let fresh = tx.poll_send().unwrap();
        tx.on_tick();
        let stale = tx.poll_send().unwrap();
        rx.on_receive_pkt(fresh);
        rx.poll_deliver().unwrap();
        tx.on_receive_pkt(rx.poll_send().unwrap());
        let _ = rx.poll_send();
        // Rounds 1..k delivered cleanly; receiver cycles back to label 0.
        for i in 1..u64::from(k) {
            tx.on_send_msg(Message::identical(i));
            rx.on_receive_pkt(tx.poll_send().unwrap());
            rx.poll_deliver().unwrap();
            tx.on_receive_pkt(rx.poll_send().unwrap());
        }
        // Replay the stale label-0 copy: phantom delivery.
        rx.on_receive_pkt(stale);
        assert!(rx.poll_deliver().is_some(), "DL1 violation reproduced");
    }

    #[test]
    #[should_panic(expected = "k ≥ 2")]
    fn rejects_tiny_cycle() {
        let _ = NaiveCycle::new(1);
    }

    #[test]
    fn k_two_matches_alternating_bit_shape() {
        let proto = NaiveCycle::new(2);
        assert_eq!(proto.forward_headers(), HeaderBound::Fixed(2));
        assert_eq!(proto.name(), "naive-cycle(k=2)");
    }

    #[test]
    fn ignores_unexpected_labels() {
        let mut rx = NaiveCycleRx::new(4);
        rx.on_receive_pkt(Packet::header_only(Header::new(2)));
        assert!(rx.poll_deliver().is_none());
        // Still acknowledges what it saw.
        assert_eq!(rx.poll_send().unwrap().header(), Header::new(2));
    }
}
