//! Run the paper's adversaries against a protocol of your choice.
//!
//! ```text
//! cargo run --example falsify -- <protocol> [adversary] [--dump <file>]
//!
//! protocols: abp | cycle3 | cycle5 | window2 | window8 | seqnum | afek | outnumber
//! adversary: mf (default, Theorem 3.1) | pf (Theorem 4.1) | greedy
//!
//! --dump writes the violating execution in the re-checkable text format
//! of `nonfifo::ioa::text`.
//! ```

use nonfifo::adversary::{FalsifyOutcome, GreedyReplayAdversary, MfFalsifier, PfFalsifier};
use nonfifo::protocols::{
    AfekFlush, AlternatingBit, DataLink, NaiveCycle, Outnumber, SequenceNumber, SlidingWindow,
};
use std::process::ExitCode;

fn protocol(name: &str) -> Option<Box<dyn DataLink>> {
    Some(match name {
        "abp" => Box::new(AlternatingBit::new()),
        "cycle3" => Box::new(NaiveCycle::new(3)),
        "cycle5" => Box::new(NaiveCycle::new(5)),
        "window2" => Box::new(SlidingWindow::new(2)),
        "window8" => Box::new(SlidingWindow::new(8)),
        "seqnum" => Box::new(SequenceNumber::new()),
        "afek" => Box::new(AfekFlush::new()),
        "outnumber" => Box::new(Outnumber::new(3)),
        _ => return None,
    })
}

fn describe(outcome: &FalsifyOutcome, dump: Option<&str>) {
    match outcome {
        FalsifyOutcome::Violation(report) => {
            let c = report.execution.counts();
            println!("⚠ INVALID EXECUTION FOUND: {}", report.violation);
            println!("  sm = {}, rm = {} (rm = sm + 1)", c.sm, c.rm);
            println!(
                "  after {} legitimate messages",
                report.messages_before_violation
            );
            println!("\nfinal events:");
            print!("{}", report.execution.render_tail(10));
            if let Some(path) = dump {
                let text = nonfifo::ioa::text::write_text(&report.execution);
                std::fs::write(path, text).expect("write dump");
                println!("\nfull execution written to {path}");
            }
        }
        FalsifyOutcome::Survived(report) => {
            println!("✓ survived the adversary");
            println!("  messages delivered : {}", report.messages_delivered);
            println!("  forward packets    : {}", report.forward_packets_sent);
            println!("  distinct headers   : {}", report.distinct_forward_packets);
            println!("  copies in transit  : {}", report.final_in_transit);
            println!("  peak space (bytes) : {}", report.peak_space_bytes);
        }
        FalsifyOutcome::Stuck { delivered } => {
            println!("✗ protocol wedged under an optimal channel after {delivered} messages");
        }
        FalsifyOutcome::BudgetExhausted {
            delivered,
            forward_packets_sent,
        } => {
            println!("… safety held but cost exploded past the step budget");
            println!("  messages delivered : {delivered}");
            println!("  forward packets    : {forward_packets_sent}");
        }
    }
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let dump = args.iter().position(|a| a == "--dump").map(|i| {
        let pair: Vec<String> = args.drain(i..i + 2).collect();
        pair[1].clone()
    });
    let dump = dump.as_deref();
    let Some(proto_name) = args.first() else {
        eprintln!("usage: falsify <abp|cycle3|cycle5|window2|window8|seqnum|afek|outnumber> [mf|pf|greedy] [--dump <file>]");
        return ExitCode::FAILURE;
    };
    let Some(proto) = protocol(proto_name) else {
        eprintln!("unknown protocol {proto_name:?}");
        return ExitCode::FAILURE;
    };
    let adversary = args.get(1).map(String::as_str).unwrap_or("mf");
    println!(
        "attacking {} ({}) with the {adversary} adversary…\n",
        proto.name(),
        proto.forward_headers()
    );
    match adversary {
        "mf" => describe(&MfFalsifier::default().run(proto.as_ref()), dump),
        "pf" => {
            let (outcome, costs) = PfFalsifier::default().run(proto.as_ref());
            describe(&outcome, dump);
            if !costs.is_empty() {
                println!("\nper-message cost samples (in-transit, extension sends):");
                for c in costs.iter().step_by(costs.len().div_ceil(8).max(1)) {
                    println!(
                        "  l = {:>4}  ext = {:>4}",
                        c.in_transit_before, c.extension_sends
                    );
                }
            }
        }
        "greedy" => describe(&GreedyReplayAdversary::default().run(proto.as_ref()), dump),
        other => {
            eprintln!("unknown adversary {other:?}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
