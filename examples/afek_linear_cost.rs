//! Theorem 4.1 tightness: under the paper's adversary the 3-header
//! reconstruction of [Afe88] pays per-message cost linear in the number of
//! packets in transit — and never less than `l/k`.
//!
//! ```text
//! cargo run --example afek_linear_cost
//! ```

use nonfifo::adversary::{FalsifyOutcome, PfConfig, PfFalsifier};
use nonfifo::analysis::fit_linear;
use nonfifo::protocols::AfekFlush;

fn main() {
    let falsifier = PfFalsifier::new(PfConfig {
        messages: 120,
        ..PfConfig::default()
    });
    let (outcome, costs) = falsifier.run(&AfekFlush::new());
    assert!(
        matches!(outcome, FalsifyOutcome::Survived(_)),
        "afek-flush must survive: {outcome:?}"
    );

    println!("Theorem 4.1 probe of afek-flush(3): one dominant copy parked per message");
    println!(
        "{:>6} {:>12} {:>12} {:>10}",
        "msg", "in transit", "ext sends", "⌊l/3⌋"
    );
    for c in costs.iter().step_by(12) {
        println!(
            "{:>6} {:>12} {:>12} {:>10}",
            c.message,
            c.in_transit_before,
            c.extension_sends,
            c.in_transit_before / 3
        );
    }

    let xs: Vec<f64> = costs.iter().map(|c| c.in_transit_before as f64).collect();
    let ys: Vec<f64> = costs.iter().map(|c| c.extension_sends as f64).collect();
    let fit = fit_linear(&xs, &ys);
    println!(
        "\nleast-squares: sends ≈ {:.3}·l + {:.2}   (lower bound slope 1/k = 0.333, R² = {:.4})",
        fit.slope, fit.intercept, fit.r_squared
    );
    let respected = costs
        .iter()
        .all(|c| c.extension_sends >= c.in_transit_before / 3);
    println!("T4.1 bound ext ≥ ⌊l/k⌋ respected on every message: {respected}");
}
