//! Theorem 5.1 live: over a probabilistic channel, a bounded-header
//! protocol pays exponentially many packets per message while the
//! unbounded-header protocol stays linear.
//!
//! ```text
//! cargo run --release --example exponential_blowup
//! ```

use nonfifo::adversary::{DominantTracker, ProbRunConfig};
use nonfifo::analysis::fit_exponential;
use nonfifo::protocols::{DataLink, Outnumber, SequenceNumber};

fn cumulative_packets(proto: &dyn DataLink, n: u64, q: f64, seed: u64) -> Vec<u64> {
    let report = DominantTracker::new(ProbRunConfig {
        messages: n,
        q,
        seed,
        max_steps_per_message: 5_000_000,
    })
    .run(proto);
    assert!(report.completed, "{} stalled", proto.name());
    assert!(report.violation.is_none(), "{} violated spec", proto.name());
    let mut total = 0;
    report
        .per_message
        .iter()
        .map(|obs| {
            total += obs.sends_by_header.values().sum::<u64>();
            total
        })
        .collect()
}

fn main() {
    let q = 0.3;
    let n = 12;
    let bounded = cumulative_packets(&Outnumber::factory(), n, q, 1);
    let naive = cumulative_packets(&SequenceNumber::factory(), n, q, 1);

    println!("cumulative forward packets after each message (q = {q}):");
    println!("{:>4} {:>14} {:>14}", "n", "outnumber(L=5)", "seqnum");
    for i in 0..n as usize {
        println!("{:>4} {:>14} {:>14}", i + 1, bounded[i], naive[i]);
    }

    let ns: Vec<f64> = (1..=n).map(|i| i as f64).collect();
    let b_bounded = fit_exponential(&ns, &bounded.iter().map(|&x| x as f64).collect::<Vec<_>>());
    let b_naive = fit_exponential(&ns, &naive.iter().map(|&x| x as f64).collect::<Vec<_>>());
    println!("\nfitted growth base:");
    println!(
        "  outnumber : {:.3}  (Theorem 5.1 lower bound: ≥ 1 + q − εₙ = {:.3} − εₙ)",
        b_bounded.base(),
        1.0 + q
    );
    println!(
        "  seqnum    : {:.3}  (linear — no exponential growth)",
        b_naive.base()
    );
}
