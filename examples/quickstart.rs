//! Quickstart: deliver messages over an unreliable channel and inspect the
//! cost, with the specification checked online.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use nonfifo::channel::Discipline;
use nonfifo::core::{SimConfig, Simulation};
use nonfifo::protocols::{DataLink, SequenceNumber, SlidingWindow};

fn main() {
    // The paper's "naive" protocol: one header per message, O(log n)
    // space, correct over any non-duplicating channel.
    let mut sim = Simulation::builder(SequenceNumber::factory())
        .channel(Discipline::Probabilistic { q: 0.3 })
        .seed(42)
        .build();
    let stats = sim
        .deliver(1000, &SimConfig::default())
        .expect("sequence numbers are safe and live over lossy channels");
    println!("sequence-number over probabilistic(q = 0.3):");
    println!("  messages delivered : {}", stats.messages_delivered);
    println!("  forward packets    : {}", stats.packets_sent_forward);
    println!("  distinct headers   : {}", stats.distinct_forward_packets);
    println!("  peak space (bytes) : {}", stats.peak_space_bytes);
    println!("  spec violations    : {:?}", stats.violation);

    // A practical pipelined protocol with *bounded* headers — fine as long
    // as the channel's reordering stays under its window.
    let proto = SlidingWindow::new(8);
    println!("\n{} over bounded-reorder(B = 4):", proto.name());
    let mut sim = Simulation::builder(proto)
        .channel(Discipline::BoundedReorder { bound: 4 })
        .seed(7)
        .build();
    let cfg = SimConfig {
        payloads: true,
        ..SimConfig::default()
    };
    let stats = sim.deliver(1000, &cfg).expect("reordering within window");
    println!("  messages delivered : {}", stats.messages_delivered);
    println!("  forward packets    : {}", stats.packets_sent_forward);
    println!("  distinct headers   : {}", stats.distinct_forward_packets);
    println!(
        "  payload order OK   : {}",
        stats.delivered_payloads == (0..1000).collect::<Vec<u64>>()
    );
}
