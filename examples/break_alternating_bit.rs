//! Reproduce the paper's central move against a classic protocol: drive the
//! alternating-bit protocol [BSW69] on a non-FIFO channel until the
//! receiver delivers a message that was never sent.
//!
//! ```text
//! cargo run --example break_alternating_bit
//! ```

use nonfifo::adversary::{FalsifyOutcome, MfFalsifier};
use nonfifo::protocols::AlternatingBit;

fn main() {
    let outcome = MfFalsifier::default().run(&AlternatingBit::new());
    match outcome {
        FalsifyOutcome::Violation(report) => {
            let c = report.execution.counts();
            println!("invalid execution constructed (Theorem 3.1 style):");
            println!("  violation : {}", report.violation);
            println!("  sm(α) = {}, rm(α) = {}  ←  rm = sm + 1", c.sm, c.rm);
            println!(
                "  messages delivered legitimately first: {}",
                report.messages_before_violation
            );
            println!(
                "  forward packets the adversary let the protocol spend: {}",
                report.forward_packets_sent
            );
            println!("\nfinal events of the execution:");
            print!("{}", report.execution.render_tail(12));
        }
        other => panic!("the alternating bit should fall on non-FIFO: {other:?}"),
    }
}
