//! The paper's closing remark, live: its results extend to transport-layer
//! protocols over non-FIFO *virtual links*. Here the non-FIFO behaviour is
//! not assumed — it emerges from multipath routing with unequal latencies,
//! and a route failure mid-run injects loss.
//!
//! ```text
//! cargo run --example transport_multipath
//! ```

use nonfifo::channel::{Channel, FaultObserver};
use nonfifo::core::{SimConfig, SimError, Simulation};
use nonfifo::ioa::Dir;
use nonfifo::protocols::{DataLink, GoBackN, SequenceNumber, SlidingWindow};
use nonfifo::transport::VirtualLinkBuilder;

fn run(proto: impl DataLink, name: &str, spread: u64) {
    let fwd = VirtualLinkBuilder::new(Dir::Forward)
        .route(0)
        .route(spread)
        .build();
    let bwd = VirtualLinkBuilder::new(Dir::Backward)
        .route(0)
        .route(spread)
        .build();
    let mut sim = Simulation::with_channels(proto, Box::new(fwd), Box::new(bwd));
    let cfg = SimConfig {
        payloads: true,
        max_steps_per_message: 50_000,
        ..SimConfig::default()
    };
    let verdict = match sim.deliver(300, &cfg) {
        Ok(stats) if stats.delivered_payloads == (0..300).collect::<Vec<u64>>() => {
            format!("ok ({} fwd packets)", stats.packets_sent_forward)
        }
        Ok(_) => "CORRUPT: payloads out of order".into(),
        Err(SimError::Violation(v)) => format!("VIOLATION: {v}"),
        Err(SimError::Stalled { message, .. }) => format!("stalled at message {message}"),
    };
    println!("  {name:<22} spread {spread:>2}: {verdict}");
}

fn main() {
    println!("transport over a two-route virtual link (per-route FIFO, unequal latency):");
    for spread in [0u64, 8, 32] {
        run(SequenceNumber::new(), "sequence-number", spread);
        run(SlidingWindow::new(4), "sliding-window(w=4)", spread);
        run(GoBackN::new(4), "go-back-n(w=4)", spread);
    }

    // Route failure at the link level: everything queued on the dead route
    // is deleted (a legal PL behaviour — deletion is allowed), traffic
    // shifts to the surviving route, and per-copy accounting stays exact.
    println!("\nroute failure (link-level view):");
    let mut link = VirtualLinkBuilder::new(Dir::Forward)
        .route(0)
        .route(6)
        .build();
    for i in 0..6 {
        link.send(nonfifo::ioa::Packet::header_only(
            nonfifo::ioa::Header::new(i),
        ));
    }
    link.fail_route(1);
    let dropped = link.drain_drops().len();
    let mut delivered = 0;
    while link.poll_deliver().is_some() {
        delivered += 1;
    }
    println!(
        "  sent 6, route 1 failed: {dropped} dropped, {delivered} delivered, {} still queued",
        link.in_transit_len()
    );
    assert_eq!(dropped + delivered + link.in_transit_len(), 6);
    println!("  conservation holds: dropped + delivered + queued = sent");
}
