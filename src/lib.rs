//! # nonfifo
//!
//! An executable reproduction of *The Intractability of Bounded Protocols for
//! Non-FIFO Channels* (Yishay Mansour and Baruch Schieber, PODC 1989).
//!
//! The paper proves three lower bounds about data-link protocols running over
//! physical channels that may delay or delete any packet (non-FIFO channels):
//!
//! 1. **Theorem 3.1** — for *any* function `f`, an `M_f`-bounded protocol
//!    needs at least `n` headers to deliver `n` messages; equivalently, the
//!    space of a sub-`n`-header protocol is unbounded by any function of `n`.
//! 2. **Theorem 4.1** — a protocol with `k < n` headers must spend at least
//!    `1/k` times the number of in-transit packets to deliver a message.
//! 3. **Theorem 5.1** — over a probabilistic channel that delays each packet
//!    with probability `q`, any fixed-header protocol sends
//!    `(1 + q − εₙ)^Ω(n)` packets to deliver `n` messages, with overwhelming
//!    probability.
//!
//! This crate re-exports the whole workspace:
//!
//! - [`ioa`] — the I/O-automaton model: packets, events, executions, and the
//!   PL1/PL2/DL1/DL2/DL3 specification checkers.
//! - [`channel`] — physical-layer simulators: adversarial non-FIFO,
//!   probabilistic, FIFO, lossy-FIFO, and bounded-reorder channels.
//! - [`protocols`] — data-link protocols: alternating bit, sequence numbers,
//!   sliding window, a naive label cycle, and reconstructions of the
//!   bounded-header protocols of AFWZ'88 and Afek'88.
//! - [`adversary`] — the paper's proofs as running code: the Theorem 3.1 and
//!   4.1 falsifiers, the boundness oracle, and Theorem 5.1 instrumentation.
//! - [`transport`] — multipath virtual links: the paper's transport-layer
//!   remark, with non-FIFO behaviour emerging from routing.
//! - [`analysis`] — Hoeffding tails, binomial distributions, growth fitting.
//! - [`core`] — the simulation engine and per-experiment runners.
//! - [`campaign`] — declarative scenario matrices: expand a spec into
//!   thousands of deterministic runs, execute them on a work-stealing pool,
//!   and cache results by run fingerprint.
//!
//! ## Quickstart
//!
//! Deliver 100 messages with the naive sequence-number protocol over a
//! probabilistic channel and inspect the cost:
//!
//! ```
//! use nonfifo::channel::Discipline;
//! use nonfifo::core::{Simulation, SimConfig};
//! use nonfifo::protocols::SequenceNumber;
//!
//! let mut sim = Simulation::builder(SequenceNumber::factory())
//!     .channel(Discipline::Probabilistic { q: 0.2 })
//!     .seed(42)
//!     .build();
//! let stats = sim.deliver(100, &SimConfig::default()).expect("delivery");
//! assert_eq!(stats.messages_delivered, 100);
//! assert!(stats.packets_sent_forward >= 100);
//! ```
//!
//! See `examples/` for adversarial runs that break the alternating-bit
//! protocol and reproduce the exponential blow-up of Theorem 5.1.

pub use nonfifo_adversary as adversary;
pub use nonfifo_analysis as analysis;
pub use nonfifo_campaign as campaign;
pub use nonfifo_channel as channel;
pub use nonfifo_core as core;
pub use nonfifo_ioa as ioa;
pub use nonfifo_protocols as protocols;
pub use nonfifo_telemetry as telemetry;
pub use nonfifo_transport as transport;

/// A convenience prelude bringing the most commonly used items into scope.
pub mod prelude {
    pub use nonfifo_adversary::{
        explore, BoundnessOracle, ExploreConfig, ExploreOutcome, FalsifyOutcome, MfFalsifier,
        PfFalsifier,
    };
    pub use nonfifo_campaign::{CampaignPlan, CampaignRunner, ScenarioSpec};
    pub use nonfifo_channel::{
        AdversarialChannel, BoundedReorderChannel, Channel, CorruptingChannel, Discipline,
        FifoChannel, LossyFifoChannel, ProbabilisticChannel,
    };
    pub use nonfifo_core::{NonFifoError, SimConfig, Simulation, SimulationBuilder};
    pub use nonfifo_ioa::{
        CopyId, Dir, Event, Execution, Header, Message, Packet, SpecMonitor, SpecViolation,
    };
    pub use nonfifo_protocols::{
        AfekFlush, AlternatingBit, DataLink, GoBackN, NaiveCycle, Receiver, SequenceNumber,
        SlidingWindow, Transmitter,
    };
    pub use nonfifo_telemetry::{MetricsSnapshot, Registry, TraceSink};
    pub use nonfifo_transport::{VirtualLink, VirtualLinkBuilder};
}
